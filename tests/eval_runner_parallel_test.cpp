// The parallel sweep engine's guarantees: grid-ordered deterministic
// outcomes identical to the serial run, serialized announce callbacks, and
// per-cell failure isolation (a throwing or numerically failing cell never
// takes its siblings down).
#include "eval/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace tvnep::eval {
namespace {

SweepConfig tiny_config(int threads) {
  SweepConfig config;
  config.base.num_requests = 2;
  config.base.grid_rows = 2;
  config.base.grid_cols = 2;
  config.base.star_leaves = 1;
  config.flexibilities = {0.0, 1.0};
  config.seeds = 2;
  // Generous enough that no cell ever hits it: the search path (and with
  // it nodes/pivots) must not depend on scheduling noise.
  config.time_limit = 60.0;
  config.threads = threads;
  return config;
}

TEST(ForEachCell, EnumeratesGridFlexibilityMajor) {
  const SweepConfig config = tiny_config(4);
  std::vector<int> visits(4, 0);
  std::vector<std::pair<std::size_t, int>> cells(4);
  std::mutex mutex;
  for_each_cell(config, [&](std::size_t f, int seed, std::size_t cell) {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_LT(cell, visits.size());
    ++visits[cell];
    cells[cell] = {f, seed};
  });
  for (std::size_t cell = 0; cell < 4; ++cell) {
    EXPECT_EQ(visits[cell], 1) << cell;
    EXPECT_EQ(cells[cell].first, cell / 2);
    EXPECT_EQ(cells[cell].second, static_cast<int>(cell % 2));
  }
}

TEST(RunModelSweep, ParallelMatchesSerialExactly) {
  const auto serial =
      run_model_sweep(tiny_config(1), core::ModelKind::kCSigma);
  const auto parallel =
      run_model_sweep(tiny_config(4), core::ModelKind::kCSigma);
  ASSERT_EQ(serial.size(), parallel.size());
  ASSERT_EQ(serial.size(), 4u);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(serial[i].flexibility, parallel[i].flexibility);
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_EQ(serial[i].failed, parallel[i].failed);
    EXPECT_EQ(serial[i].result.status, parallel[i].result.status);
    EXPECT_EQ(serial[i].result.has_solution, parallel[i].result.has_solution);
    EXPECT_EQ(serial[i].result.objective, parallel[i].result.objective);
    EXPECT_EQ(serial[i].result.best_bound, parallel[i].result.best_bound);
    EXPECT_EQ(serial[i].result.nodes, parallel[i].result.nodes);
    EXPECT_EQ(serial[i].result.lp_pivots, parallel[i].result.lp_pivots);
    EXPECT_EQ(serial[i].result.model_vars, parallel[i].result.model_vars);
    EXPECT_EQ(serial[i].result.model_constraints,
              parallel[i].result.model_constraints);
    EXPECT_GT(parallel[i].wall_seconds, 0.0);
  }
}

TEST(RunModelSweep, AnnounceSeesEveryCellOnce) {
  SweepConfig config = tiny_config(4);
  config.solve_override = [](const net::TvnepInstance&, core::ModelKind,
                             const core::SolveParams&) {
    core::TvnepSolveResult r;
    r.status = mip::MipStatus::kOptimal;
    return r;
  };
  // The runner serializes announce; no locking needed in the callback.
  std::vector<std::pair<double, int>> announced;
  std::size_t last_completed = 0;
  std::size_t announced_total = 0;
  const auto outcomes = run_model_sweep(
      config, core::ModelKind::kCSigma,
      [&](const ScenarioOutcome& o, const SweepProgress& progress) {
        announced.emplace_back(o.flexibility, o.seed);
        // Progress counts up by one per announce, against a fixed total.
        EXPECT_EQ(progress.completed, last_completed + 1);
        EXPECT_GE(progress.eta_seconds, 0.0);
        last_completed = progress.completed;
        announced_total = progress.total;
      });
  EXPECT_EQ(announced.size(), outcomes.size());
  EXPECT_EQ(announced_total, outcomes.size());
  EXPECT_EQ(last_completed, outcomes.size());
  std::sort(announced.begin(), announced.end());
  for (std::size_t i = 1; i < announced.size(); ++i)
    EXPECT_NE(announced[i - 1], announced[i]);  // each cell exactly once
}

TEST(RunModelSweep, ThrowingCellDoesNotLoseSiblings) {
  SweepConfig config = tiny_config(4);
  std::atomic<bool> thrown{false};
  config.solve_override = [&](const net::TvnepInstance&, core::ModelKind,
                              const core::SolveParams&)
      -> core::TvnepSolveResult {
    if (!thrown.exchange(true)) throw std::runtime_error("cell exploded");
    core::TvnepSolveResult r;
    r.status = mip::MipStatus::kOptimal;
    return r;
  };
  const auto outcomes = run_model_sweep(config, core::ModelKind::kCSigma);
  ASSERT_EQ(outcomes.size(), 4u);
  int failures = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    SCOPED_TRACE(i);
    // Grid order survives regardless of which worker hit the throw.
    EXPECT_EQ(outcomes[i].flexibility, i < 2 ? 0.0 : 1.0);
    EXPECT_EQ(outcomes[i].seed, static_cast<int>(i % 2));
    if (outcomes[i].failed) {
      ++failures;
      EXPECT_EQ(outcomes[i].error, "cell exploded");
    } else {
      EXPECT_EQ(outcomes[i].result.status, mip::MipStatus::kOptimal);
    }
  }
  EXPECT_EQ(failures, 1);
}

TEST(RunModelSweep, NumericalFailureMarksCellFailed) {
  SweepConfig config = tiny_config(2);
  config.solve_override = [](const net::TvnepInstance&, core::ModelKind,
                             const core::SolveParams&) {
    core::TvnepSolveResult r;
    r.status = mip::MipStatus::kNumericalFailure;
    return r;
  };
  const auto outcomes = run_model_sweep(config, core::ModelKind::kCSigma);
  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& o : outcomes) {
    EXPECT_TRUE(o.failed);
    EXPECT_FALSE(o.error.empty());
  }
}

TEST(RunModelSweep, DegradedAnytimeResultIsKeptNotFailed) {
  SweepConfig config = tiny_config(2);
  config.solve_override = [](const net::TvnepInstance&, core::ModelKind,
                             const core::SolveParams&) {
    core::TvnepSolveResult r;
    r.status = mip::MipStatus::kNumericalLimit;
    r.has_solution = true;
    r.objective = 3.0;
    r.numerical_drops = 2;
    return r;
  };
  const auto outcomes = run_model_sweep(config, core::ModelKind::kCSigma);
  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& o : outcomes) {
    EXPECT_FALSE(o.failed);
    EXPECT_TRUE(o.error.empty());
    EXPECT_FALSE(o.failure_reason.empty());
    EXPECT_EQ(o.result.objective, 3.0);  // the incumbent survives
  }
}

TEST(RunModelSweep, SurvivedDropsRecordAReasonOnCleanStatuses) {
  SweepConfig config = tiny_config(2);
  config.solve_override = [](const net::TvnepInstance&, core::ModelKind,
                             const core::SolveParams&) {
    core::TvnepSolveResult r;
    r.status = mip::MipStatus::kOptimal;
    r.has_solution = true;
    r.numerical_drops = 1;  // dominated drops: optimality unaffected
    return r;
  };
  const auto outcomes = run_model_sweep(config, core::ModelKind::kCSigma);
  for (const auto& o : outcomes) {
    EXPECT_FALSE(o.failed);
    EXPECT_FALSE(o.failure_reason.empty());
  }
}

TEST(RunModelSweep, FaultInjectedSweepStillSolvesEveryCell) {
  // End-to-end: real solves with a per-cell fault hook active. The ladder
  // must absorb the injected failures in every cell, deterministically.
  SweepConfig config = tiny_config(2);
  config.lp_fault_period = 40;
  config.lp_fault_burst = 2;
  const auto outcomes = run_model_sweep(config, core::ModelKind::kCSigma);
  ASSERT_EQ(outcomes.size(), 4u);
  const auto clean = run_model_sweep(tiny_config(2), core::ModelKind::kCSigma);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_FALSE(outcomes[i].failed) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].result.status, mip::MipStatus::kOptimal);
    EXPECT_GT(outcomes[i].result.lp_recoveries, 0);
    // Recovery changes the path, never the answer.
    EXPECT_NEAR(outcomes[i].result.objective, clean[i].result.objective,
                1e-6);
  }
}

TEST(RunModelSweep, ScalingOffSweepMatchesScalingOn) {
  SweepConfig off = tiny_config(2);
  off.lp_scaling = false;
  const auto without = run_model_sweep(off, core::ModelKind::kCSigma);
  const auto with = run_model_sweep(tiny_config(2), core::ModelKind::kCSigma);
  ASSERT_EQ(without.size(), with.size());
  for (std::size_t i = 0; i < with.size(); ++i) {
    SCOPED_TRACE(i);
    ASSERT_FALSE(without[i].failed);
    EXPECT_EQ(without[i].result.status, with[i].result.status);
    EXPECT_NEAR(without[i].result.objective, with[i].result.objective, 1e-6);
  }
}

TEST(RunGreedySweep, ParallelMatchesSerial) {
  const auto serial = run_greedy_sweep(tiny_config(1));
  const auto parallel = run_greedy_sweep(tiny_config(4));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(serial[i].flexibility, parallel[i].flexibility);
    EXPECT_EQ(serial[i].seed, parallel[i].seed);
    EXPECT_EQ(serial[i].failed, parallel[i].failed);
    EXPECT_EQ(serial[i].result.accepted, parallel[i].result.accepted);
    EXPECT_EQ(serial[i].result.complete, parallel[i].result.complete);
    ASSERT_EQ(serial[i].result.solution.requests.size(),
              parallel[i].result.solution.requests.size());
    for (std::size_t r = 0; r < serial[i].result.solution.requests.size();
         ++r)
      EXPECT_EQ(serial[i].result.solution.requests[r].accepted,
                parallel[i].result.solution.requests[r].accepted);
  }
}

}  // namespace
}  // namespace tvnep::eval
