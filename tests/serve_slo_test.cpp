// Tests for the rolling-window SLO error-budget tracker: the SRE budget
// arithmetic, window expiry over the per-second ring, the min-samples
// gate on exhaustion, and the disabled-tracker behavior.
#include <gtest/gtest.h>

#include "serve/slo.hpp"

namespace tvnep {
namespace {

using serve::SloBudget;
using serve::SloOptions;

SloOptions make_options(double window, double budget, long min_samples) {
  SloOptions options;
  options.window_seconds = window;
  options.budget_fraction = budget;
  options.min_samples = min_samples;
  return options;
}

TEST(ServeSlo, EmptyWindowReadsFullBudget) {
  SloBudget slo(make_options(60.0, 0.05, 32));
  const SloBudget::Reading reading = slo.read(10.0);
  EXPECT_EQ(reading.total, 0);
  EXPECT_EQ(reading.breached, 0);
  EXPECT_DOUBLE_EQ(reading.breach_fraction, 0.0);
  EXPECT_DOUBLE_EQ(reading.burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(reading.budget_remaining, 1.0);
  EXPECT_FALSE(slo.exhausted(10.0));
}

TEST(ServeSlo, BurnRateIsBreachFractionOverBudget) {
  // 10% budget, 5% breaching: burning at half the allowance.
  SloBudget slo(make_options(60.0, 0.10, 1));
  for (int i = 0; i < 100; ++i) slo.record(5.0, i < 5);
  const SloBudget::Reading reading = slo.read(5.0);
  EXPECT_EQ(reading.total, 100);
  EXPECT_EQ(reading.breached, 5);
  EXPECT_DOUBLE_EQ(reading.breach_fraction, 0.05);
  EXPECT_DOUBLE_EQ(reading.burn_rate, 0.5);
  EXPECT_DOUBLE_EQ(reading.budget_remaining, 0.5);
  EXPECT_FALSE(slo.exhausted(5.0));
}

TEST(ServeSlo, BudgetExhaustsAtTheAllowance) {
  // Breaching at exactly the allowance: burn rate 1.0, nothing left.
  SloBudget slo(make_options(60.0, 0.10, 1));
  for (int i = 0; i < 100; ++i) slo.record(3.0, i < 10);
  const SloBudget::Reading reading = slo.read(3.0);
  EXPECT_DOUBLE_EQ(reading.burn_rate, 1.0);
  EXPECT_DOUBLE_EQ(reading.budget_remaining, 0.0);
  EXPECT_TRUE(slo.exhausted(3.0));
}

TEST(ServeSlo, BudgetRemainingClampsAtZero) {
  SloBudget slo(make_options(60.0, 0.05, 1));
  for (int i = 0; i < 10; ++i) slo.record(1.0, true);  // 100% breaching
  const SloBudget::Reading reading = slo.read(1.0);
  EXPECT_DOUBLE_EQ(reading.burn_rate, 20.0);
  EXPECT_DOUBLE_EQ(reading.budget_remaining, 0.0);
}

TEST(ServeSlo, BreachesAgeOutOfTheWindow) {
  SloBudget slo(make_options(10.0, 0.05, 1));
  for (int i = 0; i < 50; ++i) slo.record(2.0, true);
  EXPECT_TRUE(slo.exhausted(2.0));
  // Within the window the damage is still visible...
  EXPECT_GT(slo.read(8.0).breached, 0);
  // ...past it the slots expire and the budget refills.
  const SloBudget::Reading later = slo.read(2.0 + 11.0);
  EXPECT_EQ(later.total, 0);
  EXPECT_DOUBLE_EQ(later.budget_remaining, 1.0);
  EXPECT_FALSE(slo.exhausted(2.0 + 11.0));
}

TEST(ServeSlo, SpreadAcrossSecondsAccumulates) {
  SloBudget slo(make_options(30.0, 0.5, 1));
  for (int second = 0; second < 10; ++second)
    for (int i = 0; i < 4; ++i)
      slo.record(static_cast<double>(second), i == 0);
  const SloBudget::Reading reading = slo.read(9.5);
  EXPECT_EQ(reading.total, 40);
  EXPECT_EQ(reading.breached, 10);
  EXPECT_DOUBLE_EQ(reading.breach_fraction, 0.25);
  EXPECT_DOUBLE_EQ(reading.burn_rate, 0.5);
}

TEST(ServeSlo, MinSamplesGatesExhaustion) {
  // A single early breach must not shed everything: with fewer samples
  // than the gate the ladder never consults the (empty) budget.
  SloBudget slo(make_options(60.0, 0.05, 32));
  for (int i = 0; i < 10; ++i) slo.record(1.0, true);
  EXPECT_DOUBLE_EQ(slo.read(1.0).budget_remaining, 0.0);
  EXPECT_FALSE(slo.exhausted(1.0));  // only 10 of the 32 required samples
  for (int i = 0; i < 30; ++i) slo.record(1.0, true);
  EXPECT_TRUE(slo.exhausted(1.0));
}

TEST(ServeSlo, DisabledTrackerNeverExhausts) {
  SloBudget slo(make_options(60.0, 0.0, 1));
  for (int i = 0; i < 100; ++i) slo.record(1.0, true);
  const SloBudget::Reading reading = slo.read(1.0);
  EXPECT_EQ(reading.total, 0);  // records are dropped entirely
  EXPECT_DOUBLE_EQ(reading.budget_remaining, 1.0);
  EXPECT_FALSE(slo.exhausted(1.0));
}

TEST(ServeSlo, NegativeTimesClampToZero) {
  SloBudget slo(make_options(60.0, 0.05, 1));
  slo.record(-5.0, true);  // clock skew must not crash or corrupt the ring
  const SloBudget::Reading reading = slo.read(0.0);
  EXPECT_EQ(reading.total, 1);
  EXPECT_EQ(reading.breached, 1);
}

}  // namespace
}  // namespace tvnep
