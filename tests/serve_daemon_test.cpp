// Daemon behavior over real pipes and sockets: every request gets exactly
// one decision, malformed lines answer structured errors without killing
// the stream, overload rejects instead of crashing or deadlocking, the
// external stop flag (the SIGTERM path) drains cleanly, and the TCP mode
// round-trips. These run under TSan in tier 1 — the reader, worker and
// reoptimizer threads are all exercised.
#include "serve/daemon.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "net/topology.hpp"
#include "serve/json.hpp"
#include "workload/trace.hpp"

namespace tvnep::serve {
namespace {

std::vector<std::string> request_lines(int count) {
  workload::WorkloadParams params;
  params.num_requests = count;
  params.flexibility = 1.5;
  params.seed = 5;
  const workload::ArrivalTrace trace = workload::make_trace(params);
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    RequestMessage message;
    message.id = "R" + std::to_string(i);
    message.request = trace.requests[i].request;
    message.mapping = trace.requests[i].mapping;
    lines.push_back(encode_request(message));
  }
  return lines;
}

void write_all(int fd, const std::string& text) {
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    ASSERT_GT(n, 0);
    written += static_cast<std::size_t>(n);
  }
}

/// Incremental NDJSON reply reader: read_until lets a test consume
/// replies up to a condition (e.g. "3 decisions seen") before poking the
/// daemon again — no sleeps, no races.
struct LineReader {
  explicit LineReader(int fd) : fd_(fd) {}

  template <typename Pred>
  void read_until(Pred done) {
    char buffer[4096];
    while (!done(replies)) {
      const ssize_t n = ::read(fd_, buffer, sizeof buffer);
      if (n <= 0) break;
      pending_.append(buffer, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t i = pending_.find('\n'); i != std::string::npos;
           i = pending_.find('\n', start)) {
        const std::string line = pending_.substr(start, i - start);
        start = i + 1;
        if (!line.empty()) replies.push_back(parse_json(line, "<daemon>"));
      }
      pending_.erase(0, start);
    }
  }

  std::vector<JsonValue> replies;

 private:
  int fd_;
  std::string pending_;
};

bool saw_bye(const std::vector<JsonValue>& replies) {
  for (const JsonValue& reply : replies) {
    const JsonValue* type = reply.find("type");
    if (type != nullptr && type->as_string() == "bye") return true;
  }
  return false;
}

/// Reads newline-delimited JSON replies until a "bye" (or EOF).
std::vector<JsonValue> read_replies(int fd) {
  LineReader reader(fd);
  reader.read_until(saw_bye);
  return reader.replies;
}

long count_type(const std::vector<JsonValue>& replies,
                const std::string& type) {
  long count = 0;
  for (const JsonValue& reply : replies) {
    const JsonValue* t = reply.find("type");
    if (t != nullptr && t->as_string() == type) ++count;
  }
  return count;
}

DaemonOptions fast_options() {
  DaemonOptions options;
  options.slo_ms = 2000.0;  // generous: CI machines stall under TSan
  options.queue_capacity = 64;
  return options;
}

struct Pipes {
  int in[2];   // test writes in[1], daemon reads in[0]
  int out[2];  // daemon writes out[1], test reads out[0]
  Pipes() {
    EXPECT_EQ(::pipe(in), 0);
    EXPECT_EQ(::pipe(out), 0);
  }
  ~Pipes() {
    for (int fd : {in[0], in[1], out[0], out[1]})
      if (fd >= 0) ::close(fd);
  }
  void close_fd(int& fd) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
};

TEST(ServeDaemon, EveryRequestGetsExactlyOneDecisionThenBye) {
  Pipes pipes;
  Daemon daemon(net::make_grid(4, 5, 3.5, 5.0), fast_options());
  std::thread server(
      [&] { daemon.serve(pipes.in[0], pipes.out[1]); });

  const std::vector<std::string> lines = request_lines(6);
  std::string payload;
  for (const std::string& line : lines) payload += line + "\n";
  payload += "{\"type\":\"stats\"}\n{\"type\":\"drain\"}\n";
  write_all(pipes.in[1], payload);
  pipes.close_fd(pipes.in[1]);

  const std::vector<JsonValue> replies = read_replies(pipes.out[0]);
  server.join();
  EXPECT_EQ(count_type(replies, "decision"), 6);
  EXPECT_EQ(count_type(replies, "stats"), 1);
  EXPECT_EQ(count_type(replies, "bye"), 1);
  EXPECT_EQ(count_type(replies, "error"), 0);
  // One decision per id, and ids come back in request order.
  std::vector<std::string> ids;
  for (const JsonValue& reply : replies)
    if (reply.find("type")->as_string() == "decision")
      ids.push_back(reply.find("id")->as_string());
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(ids[i], "R" + std::to_string(i));
  EXPECT_EQ(daemon.decided_total(), 6);
}

TEST(ServeDaemon, MalformedLinesAnswerErrorsWithoutKillingTheStream) {
  Pipes pipes;
  Daemon daemon(net::make_grid(4, 5, 3.5, 5.0), fast_options());
  std::thread server(
      [&] { daemon.serve(pipes.in[0], pipes.out[1]); });

  std::string payload = "this is not json\n";
  payload += "{\"type\":\"mystery\"}\n";
  payload += "{\"type\":\"request\",\"id\":\"ok\",\"t_s\":0,\"t_e\":4,"
             "\"d\":1,\"nodes\":[1.0]}\n";
  // Well-formed but hostile: mapping names substrate node 999 on a
  // 20-node grid. Must answer a structured "invalid" reject — historically
  // this was an out-of-bounds heap write on the fastpath and an escaping
  // CheckError (std::terminate past the joinable reader) on the exact
  // path.
  payload += "{\"type\":\"request\",\"id\":\"oob\",\"t_s\":0,\"t_e\":4,"
             "\"d\":1,\"nodes\":[1.0],\"mapping\":[999]}\n";
  payload += "{\"type\":\"request\",\"id\":\"ok2\",\"t_s\":0,\"t_e\":4,"
             "\"d\":1,\"nodes\":[1.0]}\n";
  payload += "{\"type\":\"drain\"}\n";
  write_all(pipes.in[1], payload);
  pipes.close_fd(pipes.in[1]);

  const std::vector<JsonValue> replies = read_replies(pipes.out[0]);
  server.join();
  EXPECT_EQ(count_type(replies, "error"), 2);
  EXPECT_EQ(count_type(replies, "decision"), 3);
  EXPECT_EQ(count_type(replies, "bye"), 1);
  for (const JsonValue& reply : replies) {
    const JsonValue* id = reply.find("id");
    if (id == nullptr || id->as_string() != "oob") continue;
    EXPECT_FALSE(reply.find("accepted")->as_bool());
    EXPECT_EQ(reply.find("reason")->as_string(), "invalid");
  }
}

TEST(ServeDaemon, OverloadShedsAndRejectsInsteadOfCrashing) {
  Pipes pipes;
  DaemonOptions options;
  options.slo_ms = 0.0;      // any queueing delay blows the SLO
  options.queue_capacity = 2;  // and the door is nearly shut
  Daemon daemon(net::make_grid(4, 5, 3.5, 5.0), options);
  std::thread server(
      [&] { daemon.serve(pipes.in[0], pipes.out[1]); });

  const std::vector<std::string> lines = request_lines(12);
  std::string payload;
  for (const std::string& line : lines) payload += line + "\n";
  payload += "{\"type\":\"drain\"}\n";
  write_all(pipes.in[1], payload);
  pipes.close_fd(pipes.in[1]);

  const std::vector<JsonValue> replies = read_replies(pipes.out[0]);
  server.join();
  // Every request was answered — shed/rejected, never dropped.
  EXPECT_EQ(count_type(replies, "decision"), 12);
  EXPECT_EQ(count_type(replies, "bye"), 1);
  long overload = 0;
  for (const JsonValue& reply : replies) {
    const JsonValue* reason = reply.find("reason");
    if (reason != nullptr && reason->as_string() == "overload") ++overload;
    // The bye tally must count queue-full door rejects (written by the
    // reader thread) along with worker decisions.
    const JsonValue* type = reply.find("type");
    if (type != nullptr && type->as_string() == "bye") {
      EXPECT_DOUBLE_EQ(reply.find("decided")->as_number(), 12.0);
    }
  }
  EXPECT_GT(overload, 0);
}

TEST(ServeDaemon, ExternalStopDrainsQueuedWorkAndSaysBye) {
  Pipes pipes;
  std::atomic<bool> stop{false};
  DaemonOptions options = fast_options();
  options.external_stop = &stop;
  Daemon daemon(net::make_grid(4, 5, 3.5, 5.0), options);
  std::thread server(
      [&] { daemon.serve(pipes.in[0], pipes.out[1]); });

  const std::vector<std::string> lines = request_lines(3);
  std::string payload;
  for (const std::string& line : lines) payload += line + "\n";
  write_all(pipes.in[1], payload);  // note: no drain, no EOF

  // Wait until the daemon has answered everything in flight, then raise
  // the stop flag — the SIGTERM handler path.
  LineReader reader(pipes.out[0]);
  reader.read_until([](const std::vector<JsonValue>& replies) {
    return count_type(replies, "decision") >= 3;
  });
  stop.store(true);
  reader.read_until(saw_bye);
  server.join();
  EXPECT_EQ(count_type(reader.replies, "decision"), 3);
  EXPECT_EQ(count_type(reader.replies, "bye"), 1);
}

TEST(ServeDaemon, TcpModeRoundTripsAndStops) {
  std::atomic<bool> stop{false};
  DaemonOptions options = fast_options();
  options.external_stop = &stop;
  Daemon daemon(net::make_grid(4, 5, 3.5, 5.0), options);
  const int port = daemon.listen_tcp(0);
  ASSERT_GT(port, 0);
  std::thread server([&] { daemon.serve_tcp(); });

  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ASSERT_EQ(::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  write_all(client,
            "{\"type\":\"request\",\"id\":\"tcp0\",\"t_s\":0,\"t_e\":4,"
            "\"d\":1,\"nodes\":[1.0]}\n{\"type\":\"drain\"}\n");
  const std::vector<JsonValue> replies = read_replies(client);
  ::close(client);
  stop.store(true);
  server.join();
  EXPECT_EQ(count_type(replies, "decision"), 1);
  EXPECT_EQ(count_type(replies, "bye"), 1);
  for (const JsonValue& reply : replies) {
    if (reply.find("type")->as_string() == "decision") {
      EXPECT_TRUE(reply.find("accepted")->as_bool());
    }
  }
}

TEST(ServeDaemon, SurvivesClientDroppingSocketMidStream) {
  // A client that vanishes between request and reply historically killed
  // the whole daemon: the reply write raised SIGPIPE (default action:
  // terminate). Now the write path sends with MSG_NOSIGNAL, counts the
  // EPIPE as serve.client_gone, and the daemon keeps serving the next
  // connection.
  std::atomic<bool> stop{false};
  DaemonOptions options = fast_options();
  options.external_stop = &stop;
  Daemon daemon(net::make_grid(4, 5, 3.5, 5.0), options);
  const int port = daemon.listen_tcp(0);
  ASSERT_GT(port, 0);
  std::thread server([&] { daemon.serve_tcp(); });

  const auto connect_client = [&] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    return fd;
  };

  // First client: send a burst of requests and hang up without reading a
  // single reply — every decision write after the close hits a dead peer.
  const int rude = connect_client();
  const std::vector<std::string> lines = request_lines(4);
  std::string payload;
  for (const std::string& line : lines) payload += line + "\n";
  payload += "{\"type\":\"drain\"}\n";
  write_all(rude, payload);
  ::close(rude);

  // Second client: the daemon must still be alive and serving.
  const int polite = connect_client();
  write_all(polite,
            "{\"type\":\"request\",\"id\":\"after\",\"t_s\":0,\"t_e\":4,"
            "\"d\":1,\"nodes\":[1.0]}\n{\"type\":\"drain\"}\n");
  const std::vector<JsonValue> replies = read_replies(polite);
  ::close(polite);
  stop.store(true);
  server.join();
  EXPECT_EQ(count_type(replies, "decision"), 1);
  EXPECT_EQ(count_type(replies, "bye"), 1);
  // The rude client's hangup may RST away some of its still-queued
  // requests (that is its loss); what it must never cost is the daemon's
  // life — the polite client's decision above is the real assertion.
  EXPECT_GE(daemon.decided_total(), 1);
}

}  // namespace
}  // namespace tvnep::serve
