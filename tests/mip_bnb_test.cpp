#include "mip/branch_and_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tvnep::mip {
namespace {

TEST(BranchAndBound, PureLpNoIntegers) {
  Model m;
  const Var x = m.add_continuous(0.0, 4.0, "x");
  const Var y = m.add_continuous(0.0, 4.0, "y");
  m.add_constr(x + y <= 5.0);
  m.set_objective(Sense::kMaximize, 3.0 * x + 2.0 * y);
  MipSolver solver;
  const MipResult r = solver.solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 14.0, 1e-6);  // x=4, y=1
  EXPECT_NEAR(r.gap(), 0.0, 1e-9);
}

TEST(BranchAndBound, SmallKnapsack) {
  // max 10a + 6b + 4c, 5a + 4b + 3c <= 10, binary → a+b (obj 16).
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  m.add_constr(5.0 * a + 4.0 * b + 3.0 * c <= 10.0);
  m.set_objective(Sense::kMaximize, 10.0 * a + 6.0 * b + 4.0 * c);
  MipSolver solver;
  const MipResult r = solver.solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 16.0, 1e-6);
  EXPECT_NEAR(r.solution[static_cast<std::size_t>(a.id)], 1.0, 1e-6);
  EXPECT_NEAR(r.solution[static_cast<std::size_t>(b.id)], 1.0, 1e-6);
  EXPECT_NEAR(r.solution[static_cast<std::size_t>(c.id)], 0.0, 1e-6);
}

TEST(BranchAndBound, IntegerRounding) {
  // max x s.t. 2x <= 7, x integer → 3 (LP gives 3.5).
  Model m;
  const Var x = m.add_var(0.0, 100.0, VarType::kInteger, "x");
  m.add_constr(2.0 * x <= 7.0);
  m.set_objective(Sense::kMaximize, LinExpr(x));
  MipSolver solver;
  const MipResult r = solver.solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-6);
}

TEST(BranchAndBound, MinimizeSense) {
  // min x + y s.t. x + y >= 1.5, binary → 2.
  Model m;
  const Var x = m.add_binary();
  const Var y = m.add_binary();
  m.add_constr(x + y >= 1.5);
  m.set_objective(Sense::kMinimize, x + LinExpr(y));
  MipSolver solver;
  const MipResult r = solver.solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

TEST(BranchAndBound, InfeasibleIntegerProblem) {
  // 0.4 <= x <= 0.6 with x binary: LP feasible, MIP infeasible.
  Model m;
  const Var x = m.add_binary("x");
  m.add_constr(LinExpr(x) >= 0.4);
  m.add_constr(LinExpr(x) <= 0.6);
  m.set_objective(Sense::kMaximize, LinExpr(x));
  MipSolver solver;
  const MipResult r = solver.solve(m);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
  EXPECT_FALSE(r.has_solution);
}

TEST(BranchAndBound, LpInfeasible) {
  Model m;
  const Var x = m.add_binary();
  m.add_constr(LinExpr(x) >= 2.0);
  m.set_objective(Sense::kMaximize, LinExpr(x));
  MipSolver solver;
  const MipResult r = solver.solve(m);
  EXPECT_EQ(r.status, MipStatus::kInfeasible);
}

TEST(BranchAndBound, ObjectiveConstantPreserved) {
  Model m;
  const Var x = m.add_binary();
  m.set_objective(Sense::kMaximize, 2.0 * x + 10.0);
  MipSolver solver;
  const MipResult r = solver.solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 12.0, 1e-6);
}

TEST(BranchAndBound, InitialIncumbentAccepted) {
  Model m;
  const Var a = m.add_binary();
  const Var b = m.add_binary();
  m.add_constr(a + b <= 1.0);
  m.set_objective(Sense::kMaximize, a + 2.0 * b);
  // Feasible warm start: a=1, b=0 (objective 1; optimal is b=1 → 2).
  MipSolver solver;
  const MipResult r = solver.solve(m, std::vector<double>{1.0, 0.0});
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-6);
}

TEST(BranchAndBound, InfeasibleInitialIncumbentIgnored) {
  Model m;
  const Var a = m.add_binary();
  m.add_constr(LinExpr(a) <= 0.0);
  m.set_objective(Sense::kMaximize, LinExpr(a));
  MipSolver solver;
  // a=1 violates the constraint; must be discarded, not believed.
  const MipResult r = solver.solve(m, std::vector<double>{1.0});
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-6);
}

TEST(BranchAndBound, GapIsInfiniteWithoutIncumbent) {
  MipResult r;
  r.has_solution = false;
  EXPECT_TRUE(std::isinf(r.gap()));
  // The bound does not matter: without an incumbent the gap is the
  // paper's "∞" marker regardless of how informative the bound is.
  r.best_bound = 123.0;
  EXPECT_TRUE(std::isinf(r.gap()));
  EXPECT_GT(r.gap(), 0.0);
}

TEST(BranchAndBound, ToStringCoversEveryStatus) {
  EXPECT_STREQ(to_string(MipStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(MipStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(MipStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(MipStatus::kTimeLimit), "time-limit");
  EXPECT_STREQ(to_string(MipStatus::kNodeLimit), "node-limit");
  EXPECT_STREQ(to_string(MipStatus::kNumericalLimit), "numerical-limit");
  EXPECT_STREQ(to_string(MipStatus::kNumericalFailure), "numerical-failure");
}

TEST(BranchAndBound, GapNearZeroObjectiveUsesBoundMagnitude) {
  // Regression: dividing by |objective| alone reported gaps of ~1e8 for
  // instances whose incumbent is ~0 (e.g. every request rejected under the
  // acceptance objective) even when the bound was perfectly informative.
  MipResult r;
  r.has_solution = true;
  r.objective = 0.0;
  r.best_bound = 0.5;
  EXPECT_NEAR(r.gap(), 1.0, 1e-12);
}

TEST(BranchAndBound, GapZeroWhenBoundMatchesNearZeroObjective) {
  MipResult r;
  r.has_solution = true;
  r.objective = 0.0;
  r.best_bound = 0.0;
  EXPECT_EQ(r.gap(), 0.0);
}

TEST(BranchAndBound, GapRegularCase) {
  MipResult r;
  r.has_solution = true;
  r.objective = 90.0;
  r.best_bound = 100.0;
  EXPECT_NEAR(r.gap(), 0.1, 1e-12);
}

TEST(BranchAndBound, NodeLimitReportsBoundAndStatus) {
  // A problem needing some search; with max_nodes=1 we stop early.
  Model m;
  std::vector<Var> xs;
  LinExpr obj;
  LinExpr weight;
  const double w[] = {3, 5, 7, 9, 11, 13};
  const double v[] = {4, 7, 9, 12, 14, 17};
  for (int i = 0; i < 6; ++i) {
    xs.push_back(m.add_binary());
    obj += v[i] * xs.back();
    weight += w[i] * xs.back();
  }
  m.add_constr(weight <= 20.0);
  m.set_objective(Sense::kMaximize, obj);
  MipOptions options;
  options.max_nodes = 1;
  options.heuristic_frequency = 0;
  MipSolver solver(options);
  const MipResult r = solver.solve(m);
  EXPECT_EQ(r.status, MipStatus::kNodeLimit);
  // Bound must be a valid upper bound on the true optimum (27: items 2+4
  // weigh 16 value 23... verified below by exact solve).
  MipSolver exact;
  const MipResult opt = exact.solve(m);
  ASSERT_EQ(opt.status, MipStatus::kOptimal);
  EXPECT_GE(r.best_bound, opt.objective - 1e-6);
}

TEST(BranchAndBound, EqualityConstrainedInteger) {
  // x + y == 5, x,y integer in [0,5], min 3x + y → x=0,y=5 → 5.
  Model m;
  const Var x = m.add_var(0.0, 5.0, VarType::kInteger);
  const Var y = m.add_var(0.0, 5.0, VarType::kInteger);
  m.add_constr(x + y == 5.0);
  m.set_objective(Sense::kMinimize, 3.0 * x + LinExpr(y));
  MipSolver solver;
  const MipResult r = solver.solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-6);
}

TEST(BranchAndBound, IsFeasibleChecksRowsBoundsIntegrality) {
  Model m;
  const Var x = m.add_binary();
  const Var y = m.add_continuous(0.0, 2.0);
  m.add_constr(x + y <= 2.0);
  EXPECT_TRUE(MipSolver::is_feasible(m, {1.0, 1.0}));
  EXPECT_FALSE(MipSolver::is_feasible(m, {0.5, 1.0}));   // fractional binary
  EXPECT_FALSE(MipSolver::is_feasible(m, {1.0, 1.5}));   // row violated
  EXPECT_FALSE(MipSolver::is_feasible(m, {1.0, 3.0}));   // bound violated
  EXPECT_FALSE(MipSolver::is_feasible(m, {1.0}));        // wrong arity
}

}  // namespace
}  // namespace tvnep::mip
