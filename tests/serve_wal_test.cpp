// Durability-layer invariants (DESIGN.md §16):
//  * the %.17g codec round-trips commits byte-exactly through the WAL and
//    the snapshot files;
//  * a full run recovers to a state byte-identical to the live engine's
//    snapshot_full();
//  * a torn final record (crash mid-append) is dropped and repaired on
//    disk; corruption anywhere *else* in the log refuses via ParseError,
//    as does a config-fingerprint mismatch;
//  * snapshot compaction bounds the log and prunes old generations while
//    preserving byte-identical recovery;
//  * the fault seam behaves: kShortWrite tears exactly the unacknowledged
//    record, kEio degrades durability without taking the service down;
//  * AcceptBackoff escalates on descriptor exhaustion and resets.
#include "serve/wal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "serve/admission.hpp"
#include "serve/json.hpp"
#include "serve/net_util.hpp"
#include "support/parse_error.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace tvnep::serve {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/tvnep_wal_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made == nullptr ? "/tmp/tvnep_wal_fallback" : made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

workload::WorkloadParams trace_params() {
  workload::WorkloadParams p;
  p.num_requests = 12;
  p.flexibility = 1.5;
  p.seed = 3;
  return p;
}

RequestMessage to_message(const workload::TraceRequest& tr, std::size_t i) {
  RequestMessage message;
  message.id = tr.request.name().empty() ? "R" + std::to_string(i)
                                         : tr.request.name();
  message.request = tr.request;
  message.mapping = tr.mapping;
  return message;
}

net::SubstrateNetwork paper_grid(const workload::WorkloadParams& p) {
  return net::make_grid(p.grid_rows, p.grid_cols, p.node_capacity,
                        p.link_capacity);
}

/// Canonical byte encoding of a full engine state — two states compare
/// equal iff the recovered engine would behave identically.
std::string encode_state(const AdmissionEngine::Snapshot& s) {
  std::string out = "v=" + std::to_string(s.version) +
                    ";now=" + wal_number(s.now) +
                    ";next_seq=" + std::to_string(s.next_seq) +
                    ";accepted=" + std::to_string(s.accepted_total) +
                    ";decisions=" + std::to_string(s.decisions) + "\n";
  for (const Commit& c : s.commits) out += "A" + encode_commit(c) + "\n";
  for (const Commit& c : s.retired) out += "R" + encode_commit(c) + "\n";
  return out;
}

/// Runs the trace of `p` through `engine` starting at request `begin`,
/// driving the snapshot cadence the way the daemon worker does.
void run_trace(AdmissionEngine* engine, Wal* wal,
               const workload::ArrivalTrace& trace, std::size_t begin = 0) {
  for (std::size_t i = begin; i < trace.requests.size(); ++i) {
    engine->admit(to_message(trace.requests[i], i));
    if (wal != nullptr && !wal->crashed() && wal->wants_snapshot())
      engine->with_snapshot_full(
          [&](const AdmissionEngine::Snapshot& s) { wal->write_snapshot(s); });
  }
}

std::vector<std::string> file_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

long count_snapshots(const std::string& dir) {
  long count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snapshot-", 0) == 0) ++count;
  }
  return count;
}

TEST(ServeWal, NumberCodecRoundTripsBitExactly) {
  const double values[] = {0.0,        -0.0,       0.1,
                           1.0 / 3.0,  2.0 / 7.0,  1e-300,
                           1e300,      3.141592653589793,
                           1234567.8901234567, -42.125};
  for (const double v : values) {
    const std::string text = wal_number(v);
    const double back = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << text;
  }
}

TEST(ServeWal, CommitCodecRoundTripsByteExactly) {
  const workload::WorkloadParams p = trace_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  AdmissionEngine engine(paper_grid(p), {});
  run_trace(&engine, nullptr, trace);
  const std::vector<Commit> history = engine.history();
  ASSERT_FALSE(history.empty());
  for (const Commit& commit : history) {
    const std::string encoded = encode_commit(commit);
    const Commit decoded =
        decode_commit(parse_json(encoded, "<test>"), "<test>", 1);
    EXPECT_EQ(encode_commit(decoded), encoded) << commit.id;
    EXPECT_EQ(decoded.seq, commit.seq);
    EXPECT_EQ(decoded.mapping.has_value(), commit.mapping.has_value());
  }
}

TEST(ServeWal, FullRunRecoversByteIdenticalState) {
  const workload::WorkloadParams p = trace_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const net::SubstrateNetwork substrate = paper_grid(p);
  const AdmissionOptions admission;
  const std::uint64_t fp = serve_state_fingerprint(substrate, admission);
  TempDir dir;

  std::string live_state;
  {
    AdmissionEngine engine(substrate, admission);
    RecoveredState recovered;
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, {}, &recovered);
    EXPECT_FALSE(recovered.had_state);
    wal->attach(&engine);
    run_trace(&engine, wal.get(), trace);
    EXPECT_FALSE(wal->crashed());
    EXPECT_EQ(wal->stats().appends,
              static_cast<long>(engine.decisions_total()));
    // fsync=every: one barrier per record, durable before each ack.
    EXPECT_EQ(wal->stats().fsyncs, wal->stats().appends);
    live_state = encode_state(engine.snapshot_full());
    engine.set_state_sink({});
  }

  RecoveredState recovered;
  std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, {}, &recovered);
  EXPECT_TRUE(recovered.had_state);
  EXPECT_EQ(wal->stats().replayed,
            static_cast<long>(recovered.state.decisions));
  EXPECT_EQ(encode_state(recovered.state), live_state);
  // The recovered commit set passes the independent capacity validator.
  const core::ValidationResult check = validate_commit_state(
      substrate, recovered.state.commits, recovered.state.retired);
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);
  // restore() rehydrates an engine whose own full snapshot matches too.
  AdmissionEngine engine(substrate, admission);
  engine.restore(recovered.state);
  EXPECT_EQ(encode_state(engine.snapshot_full()), live_state);
}

TEST(ServeWal, BatchFsyncLosesNothingAcrossReopen) {
  const workload::WorkloadParams p = trace_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const net::SubstrateNetwork substrate = paper_grid(p);
  const std::uint64_t fp = serve_state_fingerprint(substrate, {});
  TempDir dir;
  WalOptions options;
  options.fsync = WalOptions::Fsync::kBatch;
  options.batch_records = 4;

  std::string live_state;
  {
    AdmissionEngine engine(substrate, {});
    RecoveredState recovered;
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, options, &recovered);
    wal->attach(&engine);
    run_trace(&engine, wal.get(), trace);
    // Far fewer barriers than records — that is the whole point of batch.
    EXPECT_LT(wal->stats().fsyncs, wal->stats().appends);
    live_state = encode_state(engine.snapshot_full());
    engine.set_state_sink({});
  }
  // A SIGKILL (process death, not power loss) keeps every written byte:
  // recovery sees all records even though most were never fsync'd.
  RecoveredState recovered;
  std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, options, &recovered);
  EXPECT_EQ(encode_state(recovered.state), live_state);
}

TEST(ServeWal, TornFinalRecordIsDroppedAndRepairedOnDisk) {
  const workload::WorkloadParams p = trace_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const net::SubstrateNetwork substrate = paper_grid(p);
  const std::uint64_t fp = serve_state_fingerprint(substrate, {});
  TempDir dir;

  std::uint64_t decisions = 0;
  {
    AdmissionEngine engine(substrate, {});
    RecoveredState recovered;
    WalOptions options;
    options.snapshot_every = 0;  // keep everything in the log
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, options, &recovered);
    wal->attach(&engine);
    run_trace(&engine, wal.get(), trace);
    decisions = engine.decisions_total();
    engine.set_state_sink({});
  }
  const std::string log_path = dir.path + "/wal.jsonl";
  // Crash mid-append: a torn, unterminated fragment as the final record.
  {
    std::ofstream out(log_path, std::ios::app | std::ios::binary);
    out << "{\"txid\":999,\"t\":\"d\",\"id\":\"torn";
  }
  {
    RecoveredState recovered;
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, {}, &recovered);
    EXPECT_EQ(wal->stats().torn_repaired, 1);
    EXPECT_EQ(recovered.state.decisions, decisions);  // fragment dropped
  }
  // The repair is durable: a second recovery finds a clean log.
  RecoveredState recovered;
  std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, {}, &recovered);
  EXPECT_EQ(wal->stats().torn_repaired, 0);
  EXPECT_EQ(recovered.state.decisions, decisions);
}

TEST(ServeWal, MidLogCorruptionRefusesToResume) {
  const workload::WorkloadParams p = trace_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const net::SubstrateNetwork substrate = paper_grid(p);
  const std::uint64_t fp = serve_state_fingerprint(substrate, {});
  TempDir dir;
  {
    AdmissionEngine engine(substrate, {});
    RecoveredState recovered;
    WalOptions options;
    options.snapshot_every = 0;
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, options, &recovered);
    wal->attach(&engine);
    run_trace(&engine, wal.get(), trace);
    engine.set_state_sink({});
  }
  // Mangle a record in the *middle* of the log. Unlike a torn tail this
  // is real damage — silently skipping it would resurrect capacity that
  // later records already spent.
  const std::string log_path = dir.path + "/wal.jsonl";
  std::vector<std::string> lines = file_lines(log_path);
  ASSERT_GT(lines.size(), 4u);
  lines[2] = "{\"txid\":2,\"t\":\"d\",\"id\":truncated";
  {
    std::ofstream out(log_path, std::ios::binary | std::ios::trunc);
    for (const std::string& line : lines) out << line << "\n";
  }
  RecoveredState recovered;
  EXPECT_THROW(Wal::open(dir.path, fp, {}, &recovered), ParseError);
}

TEST(ServeWal, FingerprintMismatchRefusesToResume) {
  const workload::WorkloadParams p = trace_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const net::SubstrateNetwork substrate = paper_grid(p);
  const std::uint64_t fp = serve_state_fingerprint(substrate, {});
  TempDir dir;
  {
    AdmissionEngine engine(substrate, {});
    RecoveredState recovered;
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, {}, &recovered);
    wal->attach(&engine);
    run_trace(&engine, wal.get(), trace);
    engine.set_state_sink({});
  }
  RecoveredState recovered;
  EXPECT_THROW(Wal::open(dir.path, fp ^ 1, {}, &recovered), ParseError);
  // And the fingerprint itself tracks everything that defines decision
  // identity: capacities and admission semantics, not latency knobs.
  EXPECT_EQ(serve_state_fingerprint(substrate, {}), fp);
  const net::SubstrateNetwork bigger =
      net::make_grid(p.grid_rows, p.grid_cols, p.node_capacity + 1.0,
                     p.link_capacity);
  EXPECT_NE(serve_state_fingerprint(bigger, {}), fp);
  AdmissionOptions no_gc;
  no_gc.gc = false;
  EXPECT_NE(serve_state_fingerprint(substrate, no_gc), fp);
  AdmissionOptions smaller_step;
  smaller_step.max_step_requests = 8;
  EXPECT_NE(serve_state_fingerprint(substrate, smaller_step), fp);
}

TEST(ServeWal, SnapshotCompactionBoundsTheLogAndPrunesGenerations) {
  const workload::WorkloadParams p = trace_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const net::SubstrateNetwork substrate = paper_grid(p);
  const std::uint64_t fp = serve_state_fingerprint(substrate, {});
  TempDir dir;
  WalOptions options;
  options.snapshot_every = 4;
  options.snapshots_kept = 2;

  std::string live_state;
  {
    AdmissionEngine engine(substrate, {});
    RecoveredState recovered;
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, options, &recovered);
    wal->attach(&engine);
    run_trace(&engine, wal.get(), trace);
    EXPECT_EQ(wal->stats().snapshots, 3);  // 12 decisions / every 4
    live_state = encode_state(engine.snapshot_full());
    engine.set_state_sink({});
  }
  // Compaction kept the log to a tail shorter than one snapshot interval
  // (header + records since the last snapshot) and pruned to 2 generations.
  EXPECT_LE(file_lines(dir.path + "/wal.jsonl").size(),
            1u + static_cast<std::size_t>(options.snapshot_every));
  EXPECT_EQ(count_snapshots(dir.path), 2);

  RecoveredState recovered;
  std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, options, &recovered);
  EXPECT_TRUE(wal->stats().recovered_snapshot);
  EXPECT_EQ(encode_state(recovered.state), live_state);
}

TEST(ServeWal, ShortWriteTearsOnlyTheUnacknowledgedRecord) {
  const workload::WorkloadParams p = trace_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const net::SubstrateNetwork substrate = paper_grid(p);
  const std::uint64_t fp = serve_state_fingerprint(substrate, {});
  TempDir dir;
  WalOptions options;
  options.snapshot_every = 0;
  int writes = 0;
  options.fault_hook = [&](const char* point) {
    if (std::strcmp(point, "append.write") == 0 && ++writes == 6)
      return WalFault::kShortWrite;
    return WalFault::kNone;
  };
  {
    AdmissionEngine engine(substrate, {});
    RecoveredState recovered;
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, options, &recovered);
    wal->attach(&engine);
    run_trace(&engine, wal.get(), trace);
    EXPECT_TRUE(wal->crashed());
    EXPECT_EQ(wal->stats().appends, 5);  // records past the tear never land
    engine.set_state_sink({});
  }
  RecoveredState recovered;
  std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, {}, &recovered);
  EXPECT_EQ(wal->stats().torn_repaired, 1);
  // Exactly the five acknowledged decisions survive — the torn sixth was
  // never acked, so dropping it forfeits nothing.
  EXPECT_EQ(recovered.state.decisions, 5u);
}

TEST(ServeWal, EioDegradesDurabilityWithoutTakingServiceDown) {
  const workload::WorkloadParams p = trace_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const net::SubstrateNetwork substrate = paper_grid(p);
  const std::uint64_t fp = serve_state_fingerprint(substrate, {});
  TempDir dir;
  WalOptions options;
  options.snapshot_every = 0;
  int syncs = 0;
  options.fault_hook = [&](const char* point) {
    if (std::strcmp(point, "append.fsync") == 0 && ++syncs == 3)
      return WalFault::kEio;
    return WalFault::kNone;
  };
  std::uint64_t decisions = 0;
  {
    AdmissionEngine engine(substrate, {});
    RecoveredState recovered;
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, options, &recovered);
    wal->attach(&engine);
    run_trace(&engine, wal.get(), trace);
    decisions = engine.decisions_total();
    EXPECT_FALSE(wal->crashed());  // an I/O error is not a crash
    EXPECT_EQ(wal->stats().io_errors, 1);
    EXPECT_EQ(wal->stats().appends, static_cast<long>(decisions) - 1);
    engine.set_state_sink({});
  }
  // The failed fsync only weakened the power-loss barrier; the bytes
  // landed, so recovery still sees every decision.
  RecoveredState recovered;
  std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, {}, &recovered);
  EXPECT_EQ(recovered.state.decisions, decisions);
}

TEST(ServeWal, ValidatorFlagsAnOverbookedRecoveredState) {
  const workload::WorkloadParams p = trace_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const net::SubstrateNetwork substrate = paper_grid(p);
  AdmissionEngine engine(substrate, {});
  run_trace(&engine, nullptr, trace);
  const AdmissionEngine::Snapshot state = engine.snapshot_full();
  ASSERT_FALSE(state.commits.empty());
  EXPECT_TRUE(
      validate_commit_state(substrate, state.commits, state.retired).ok);
  // Doubling every active commit overbooks node capacity somewhere — the
  // recovery validator must notice (this is the check that refuses to
  // serve from a state dir whose substrate no longer fits its commits).
  std::vector<Commit> doubled = state.commits;
  doubled.insert(doubled.end(), state.commits.begin(), state.commits.end());
  EXPECT_FALSE(validate_commit_state(substrate, doubled, state.retired).ok);
}

TEST(ServeWal, AcceptBackoffEscalatesOnExhaustionAndResets) {
  AcceptBackoff backoff;
  // Per-connection noise retries immediately and does not escalate.
  EXPECT_EQ(backoff.on_error(EINTR), 0);
  EXPECT_EQ(backoff.on_error(ECONNABORTED), 0);
  EXPECT_EQ(backoff.on_error(EPROTO), 0);
  EXPECT_EQ(backoff.current_delay_ms(), 0);
  // Descriptor exhaustion doubles from 10 ms to the 500 ms cap.
  EXPECT_EQ(backoff.on_error(EMFILE), 10);
  EXPECT_EQ(backoff.on_error(ENFILE), 20);
  EXPECT_EQ(backoff.on_error(ENOBUFS), 40);
  int delay = 40;
  for (int i = 0; i < 10; ++i) delay = backoff.on_error(EMFILE);
  EXPECT_EQ(delay, AcceptBackoff::kMaxMs);
  // A successful accept resets the ladder.
  backoff.on_success();
  EXPECT_EQ(backoff.current_delay_ms(), 0);
  EXPECT_EQ(backoff.on_error(EMFILE), 10);
}

}  // namespace
}  // namespace tvnep::serve
