// Wire protocol: JSON parsing strictness, request round-trips, and the
// encoded decision/error/bye shapes the smoke script greps for.
#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include "serve/json.hpp"
#include "support/parse_error.hpp"

namespace tvnep::serve {
namespace {

TEST(ServeJson, ParsesScalarsArraysAndObjects) {
  const JsonValue v = parse_json(
      R"({"a":1.5,"b":"x","c":[1,2,3],"d":{"e":true,"f":null},"g":-2e3})",
      "test");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.5);
  EXPECT_EQ(v.find("b")->as_string(), "x");
  ASSERT_EQ(v.find("c")->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.find("c")->as_array()[2].as_number(), 3.0);
  EXPECT_TRUE(v.find("d")->find("e")->as_bool());
  EXPECT_TRUE(v.find("d")->find("f")->is_null());
  EXPECT_DOUBLE_EQ(v.find("g")->as_number(), -2000.0);
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(ServeJson, DecodesEscapesAndSurrogatePairs) {
  const JsonValue v =
      parse_json(R"("a\"b\\c\n\tA😀")", "test");
  EXPECT_EQ(v.as_string(), "a\"b\\c\n\tA\xF0\x9F\x98\x80");
}

TEST(ServeJson, RejectsMalformedInputWithLocation) {
  EXPECT_THROW(parse_json("{\"a\":}", "t"), ParseError);
  EXPECT_THROW(parse_json("{\"a\":1,}", "t"), ParseError);
  EXPECT_THROW(parse_json("[1 2]", "t"), ParseError);
  EXPECT_THROW(parse_json("\"unterminated", "t"), ParseError);
  EXPECT_THROW(parse_json("tru", "t"), ParseError);
  EXPECT_THROW(parse_json("1.2.3", "t"), ParseError);
  EXPECT_THROW(parse_json("{} trailing", "t"), ParseError);
  EXPECT_THROW(parse_json(R"("\uD800")", "t"), ParseError);
  try {
    parse_json("{\"a\": x}", "somewhere", 7);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.source(), "somewhere");
    EXPECT_EQ(e.line(), 7);
    EXPECT_GT(e.column(), 0);
  }
}

RequestMessage sample_request() {
  RequestMessage message;
  message.id = "R7";
  net::VnetRequest request("R7");
  request.add_node(1.25);
  request.add_node(1.75);
  request.add_node(1.5);
  request.add_link(0, 1, 1.125);
  request.add_link(0, 2, 1.375);
  request.set_temporal(2.5, 9.0, 3.25);
  message.request = std::move(request);
  message.mapping = std::vector<net::NodeId>{4, 0, 9};
  return message;
}

TEST(ServeProtocol, RequestRoundTripsThroughEncodeAndParse) {
  const RequestMessage original = sample_request();
  const InMessage parsed = parse_message(encode_request(original), "test");
  ASSERT_EQ(parsed.kind, MessageKind::kRequest);
  const RequestMessage& got = parsed.request;
  EXPECT_EQ(got.id, "R7");
  EXPECT_DOUBLE_EQ(got.request.earliest_start(), 2.5);
  EXPECT_DOUBLE_EQ(got.request.latest_end(), 9.0);
  EXPECT_DOUBLE_EQ(got.request.duration(), 3.25);
  ASSERT_EQ(got.request.num_nodes(), 3);
  EXPECT_DOUBLE_EQ(got.request.node_demand(1), 1.75);
  ASSERT_EQ(got.request.num_links(), 2);
  EXPECT_EQ(got.request.link(1).from, 0);
  EXPECT_EQ(got.request.link(1).to, 2);
  EXPECT_DOUBLE_EQ(got.request.link(1).demand, 1.375);
  ASSERT_TRUE(got.mapping.has_value());
  EXPECT_EQ(*got.mapping, (std::vector<net::NodeId>{4, 0, 9}));
}

TEST(ServeProtocol, ControlMessagesParse) {
  EXPECT_EQ(parse_message(R"({"type":"stats"})", "t").kind,
            MessageKind::kStats);
  EXPECT_EQ(parse_message(R"({"type":"reopt"})", "t").kind,
            MessageKind::kReopt);
  EXPECT_EQ(parse_message(R"({"type":"drain"})", "t").kind,
            MessageKind::kDrain);
}

TEST(ServeProtocol, RejectsInvalidRequests) {
  // Unknown type.
  EXPECT_THROW(parse_message(R"({"type":"nope"})", "t"), ParseError);
  // Missing id.
  EXPECT_THROW(parse_message(
                   R"({"type":"request","t_s":0,"t_e":2,"d":1,"nodes":[1]})",
                   "t"),
               ParseError);
  // Window shorter than duration.
  EXPECT_THROW(
      parse_message(
          R"({"type":"request","id":"a","t_s":0,"t_e":1,"d":2,"nodes":[1]})",
          "t"),
      ParseError);
  // Link endpoint out of range.
  EXPECT_THROW(
      parse_message(R"({"type":"request","id":"a","t_s":0,"t_e":2,"d":1,)"
                    R"("nodes":[1],"links":[[0,5,1]]})",
                    "t"),
      ParseError);
  // Mapping size mismatch.
  EXPECT_THROW(
      parse_message(R"({"type":"request","id":"a","t_s":0,"t_e":2,"d":1,)"
                    R"("nodes":[1,1],"mapping":[0]})",
                    "t"),
      ParseError);
  // Negative demand.
  EXPECT_THROW(
      parse_message(
          R"({"type":"request","id":"a","t_s":0,"t_e":2,"d":1,"nodes":[-1]})",
          "t"),
      ParseError);
}

TEST(ServeProtocol, RejectsOutOfIntRangeIndicesWithoutCasting) {
  // Values far outside int's range must be rejected by comparing the
  // double, never by casting it first (the cast itself is UB).
  EXPECT_THROW(
      parse_message(R"({"type":"request","id":"a","t_s":0,"t_e":2,"d":1,)"
                    R"("nodes":[1,1],"links":[[0,1e20,1]]})",
                    "t"),
      ParseError);
  EXPECT_THROW(
      parse_message(R"({"type":"request","id":"a","t_s":0,"t_e":2,"d":1,)"
                    R"("nodes":[1],"mapping":[1e20]})",
                    "t"),
      ParseError);
  EXPECT_THROW(
      parse_message(R"({"type":"request","id":"a","t_s":0,"t_e":2,"d":1,)"
                    R"("nodes":[1],"mapping":[2147483648]})",
                    "t"),
      ParseError);
  EXPECT_THROW(
      parse_message(R"({"type":"request","id":"a","t_s":0,"t_e":2,"d":1,)"
                    R"("nodes":[1],"mapping":[1.5]})",
                    "t"),
      ParseError);
  // The largest representable id still parses.
  const InMessage ok = parse_message(
      R"({"type":"request","id":"a","t_s":0,"t_e":2,"d":1,)"
      R"("nodes":[1],"mapping":[2147483647]})",
      "t");
  ASSERT_TRUE(ok.request.mapping.has_value());
  EXPECT_EQ((*ok.request.mapping)[0], 2147483647);
}

TEST(ServeProtocol, EncodesDecisionsErrorsAndBye) {
  Decision accepted;
  accepted.id = "R1";
  accepted.accepted = true;
  accepted.start = 2.0;
  accepted.end = 5.0;
  accepted.mode = "exact";
  accepted.latency_ms = 1.5;
  const std::string a = encode_decision(accepted);
  EXPECT_NE(a.find("\"accepted\":true"), std::string::npos);
  EXPECT_NE(a.find("\"start\":2"), std::string::npos);
  EXPECT_EQ(a.find("\"reason\""), std::string::npos);

  Decision rejected;
  rejected.id = "R2";
  rejected.reason = "overload";
  rejected.mode = "shed";
  const std::string r = encode_decision(rejected);
  EXPECT_NE(r.find("\"accepted\":false"), std::string::npos);
  EXPECT_NE(r.find("\"reason\":\"overload\""), std::string::npos);

  EXPECT_EQ(encode_bye(12), "{\"type\":\"bye\",\"decided\":12}");
  EXPECT_NE(encode_error("bad \"line\""), encode_error("other"));
  // Every encoded line is itself parseable JSON.
  EXPECT_NO_THROW(parse_json(a, "t"));
  EXPECT_NO_THROW(parse_json(r, "t"));
  EXPECT_NO_THROW(parse_json(encode_error("x\"y"), "t"));
  EXPECT_NO_THROW(parse_json(encode_stats("\"active\":3"), "t"));
}

}  // namespace
}  // namespace tvnep::serve
