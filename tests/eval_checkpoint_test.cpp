// The crash-safe sweep journal: durable append + resume round-trips, torn
// final-line tolerance, fingerprint refusal across incompatible configs,
// and end-to-end sweep resume that re-solves only the unjournaled cells
// with outcomes identical to an uninterrupted run.
#include "eval/checkpoint.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "eval/runner.hpp"
#include "support/parse_error.hpp"

namespace tvnep::eval {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  // Unique per test: ctest runs the cases of this binary as concurrent
  // processes in one working directory, so a shared journal path would
  // make parallel runs clobber each other's files.
  const std::string path_ =
      std::string("checkpoint_test_") +
      ::testing::UnitTest::GetInstance()->current_test_info()->name() +
      ".jsonl";
};

SweepConfig tiny_config() {
  SweepConfig config;
  config.base.num_requests = 2;
  config.base.grid_rows = 2;
  config.base.grid_cols = 2;
  config.base.star_leaves = 1;
  config.flexibilities = {0.0, 1.0};
  config.seeds = 2;
  config.time_limit = 60.0;
  config.threads = 2;
  return config;
}

std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST_F(CheckpointTest, ValuesSerializeRoundTripExact) {
  // %.17g must reproduce the identical double on reload — including the
  // classic non-representable decimals and extreme magnitudes.
  const double values[] = {0.1, 1.0 / 3.0, 1e-300, 1.7976931348623157e308,
                           -0.0, 123456789.123456789};
  CellRecord record;
  record.key = {"codec", 0, 0};
  for (std::size_t i = 0; i < std::size(values); ++i)
    record.fields["v" + std::to_string(i)] = JournalValue(values[i]);
  record.fields["pinf"] =
      JournalValue(std::numeric_limits<double>::infinity());
  record.fields["ninf"] =
      JournalValue(-std::numeric_limits<double>::infinity());
  record.fields["nan"] =
      JournalValue(std::numeric_limits<double>::quiet_NaN());
  record.fields["text"] = JournalValue("quotes \" slashes \\ tabs\t");
  record.fields["flag"] = JournalValue(true);

  auto journal = SweepJournal::create(path_, 7);
  ASSERT_TRUE(journal->append(record));
  auto reloaded = SweepJournal::resume(path_, 7);
  ASSERT_EQ(reloaded->loaded(), 1u);
  const CellRecord* got = reloaded->find(record.key);
  ASSERT_NE(got, nullptr);
  for (std::size_t i = 0; i < std::size(values); ++i)
    EXPECT_EQ(got->number("v" + std::to_string(i)), values[i]) << i;
  EXPECT_TRUE(std::isinf(got->number("pinf")));
  EXPECT_GT(got->number("pinf"), 0.0);
  EXPECT_TRUE(std::isinf(got->number("ninf")));
  EXPECT_LT(got->number("ninf"), 0.0);
  EXPECT_TRUE(std::isnan(got->number("nan")));
  EXPECT_EQ(got->text("text"), "quotes \" slashes \\ tabs\t");
  EXPECT_TRUE(got->boolean("flag"));
}

TEST_F(CheckpointTest, ResumeRefusesDifferentFingerprint) {
  { auto journal = SweepJournal::create(path_, 1); }
  try {
    SweepJournal::resume(path_, 2);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 1);
    EXPECT_NE(std::string(e.what()).find("refusing to resume"),
              std::string::npos);
  }
}

TEST_F(CheckpointTest, TornFinalLineIsDroppedNotFatal) {
  auto journal = SweepJournal::create(path_, 3);
  CellRecord a;
  a.key = {"m", 0, 0};
  a.fields["x"] = JournalValue(1.0);
  CellRecord b = a;
  b.key.seed = 1;
  ASSERT_TRUE(journal->append(a));
  ASSERT_TRUE(journal->append(b));

  // Simulate a crash mid-append: chop the final record in half.
  std::string content = read_all(path_);
  content.resize(content.size() - 12);
  {
    std::ofstream out(path_, std::ios::trunc);
    out << content;
  }

  auto resumed = SweepJournal::resume(path_, 3);
  EXPECT_EQ(resumed->loaded(), 1u);
  EXPECT_NE(resumed->find(a.key), nullptr);
  EXPECT_EQ(resumed->find(b.key), nullptr);
}

TEST_F(CheckpointTest, TornFinalLineIsRepairedOnDisk) {
  // A torn final line has no trailing newline; if resume only dropped it
  // in memory, the next append would concatenate onto the torn bytes and
  // corrupt the journal for every later resume.
  auto journal = SweepJournal::create(path_, 3);
  CellRecord a;
  a.key = {"m", 0, 0};
  a.fields["x"] = JournalValue(1.0);
  ASSERT_TRUE(journal->append(a));
  CellRecord b = a;
  b.key.seed = 1;
  ASSERT_TRUE(journal->append(b));
  std::string content = read_all(path_);
  while (!content.empty() && content.back() == '\n') content.pop_back();
  content.resize(content.size() - 5);  // torn mid-record, no newline
  {
    std::ofstream out(path_, std::ios::trunc);
    out << content;
  }

  auto resumed = SweepJournal::resume(path_, 3);
  ASSERT_EQ(resumed->loaded(), 1u);
  ASSERT_TRUE(resumed->append(b));  // re-solve lands after the repair
  auto again = SweepJournal::resume(path_, 3);
  EXPECT_EQ(again->loaded(), 2u);
  EXPECT_NE(again->find(a.key), nullptr);
  EXPECT_NE(again->find(b.key), nullptr);
}

TEST_F(CheckpointTest, MalformedMiddleLineIsFatal) {
  auto journal = SweepJournal::create(path_, 3);
  CellRecord a;
  a.key = {"m", 0, 0};
  ASSERT_TRUE(journal->append(a));
  {
    std::ofstream out(path_, std::ios::app);
    out << "{corrupted\n";
  }
  CellRecord b = a;
  b.key.seed = 1;
  ASSERT_TRUE(journal->append(b));
  EXPECT_THROW(SweepJournal::resume(path_, 3), ParseError);
}

TEST_F(CheckpointTest, ResumeOfMissingFileDegradesToCreate) {
  auto journal = SweepJournal::resume(path_, 9);
  EXPECT_EQ(journal->loaded(), 0u);
  CellRecord a;
  a.key = {"m", 0, 0};
  EXPECT_TRUE(journal->append(a));
  EXPECT_EQ(SweepJournal::resume(path_, 9)->loaded(), 1u);
}

TEST_F(CheckpointTest, CellKeyHashIsStableAndDiscriminates) {
  const CellKey a{"cSigma", 1, 2};
  EXPECT_EQ(cell_key_hash(a), cell_key_hash(a));
  EXPECT_NE(cell_key_hash(a), cell_key_hash({"cSigma", 1, 3}));
  EXPECT_NE(cell_key_hash(a), cell_key_hash({"cSigma", 2, 2}));
  EXPECT_NE(cell_key_hash(a), cell_key_hash({"sigma", 1, 2}));
}

TEST_F(CheckpointTest, FingerprintCoversSweepIdentityNotThreads) {
  const SweepConfig base = tiny_config();
  SweepConfig threads = base;
  threads.threads = 7;  // fan-out does not change what a cell computes
  EXPECT_EQ(sweep_fingerprint(base, "fig3"), sweep_fingerprint(threads, "fig3"));

  SweepConfig limit = base;
  limit.time_limit = 1.0;
  EXPECT_NE(sweep_fingerprint(base, "fig3"), sweep_fingerprint(limit, "fig3"));
  SweepConfig faults = base;
  faults.lp_fault_period = 40;
  EXPECT_NE(sweep_fingerprint(base, "fig3"),
            sweep_fingerprint(faults, "fig3"));
  EXPECT_NE(sweep_fingerprint(base, "fig3"), sweep_fingerprint(base, "fig4"));
}

TEST_F(CheckpointTest, ScenarioOutcomeCodecRoundTrips) {
  ScenarioOutcome outcome;
  outcome.flexibility = 1.5;
  outcome.seed = 3;
  outcome.wall_seconds = 0.125;
  outcome.failure_reason = "numerical limit: degraded";
  outcome.retries = 2;
  outcome.timed_out = true;
  auto& r = outcome.result;
  r.status = mip::MipStatus::kNumericalLimit;
  r.has_solution = true;
  r.accepted_requests = 4;
  r.objective = 17.25;
  r.best_bound = 18.0 + 1.0 / 3.0;
  r.gap = std::numeric_limits<double>::infinity();
  r.seconds = 0.0625;
  r.nodes = 123;
  r.lp_pivots = 4567;
  r.lp_iterations = 890;
  r.dual_fallbacks = 1;
  r.refactorizations = 2;
  r.basis_updates = 4321;
  r.lp_basis_fill_max = 2.75;
  r.lp_recoveries = 3;
  r.numerical_drops = 4;
  r.model_vars = 55;
  r.model_constraints = 66;
  r.model_integer_vars = 44;
  r.presolve_rows_removed = 7;
  r.presolve_cols_removed = 8;
  r.presolve_coeffs_tightened = 9;
  r.presolve_bounds_tightened = 10;
  r.presolve_infeasible = false;
  r.presolve_seconds = 0.001;

  const CellRecord record = encode_outcome("cSigma", 2, outcome);
  EXPECT_EQ(record.key.label, "cSigma");
  EXPECT_EQ(record.key.flex_index, 2);
  EXPECT_EQ(record.key.seed, 3);

  // Through the full serialize/parse cycle, not just the in-memory maps.
  auto journal = SweepJournal::create(path_, 1);
  ASSERT_TRUE(journal->append(record));
  auto reloaded = SweepJournal::resume(path_, 1);
  const CellRecord* got = reloaded->find(record.key);
  ASSERT_NE(got, nullptr);

  ScenarioOutcome decoded;
  ASSERT_TRUE(decode_outcome(*got, decoded));
  EXPECT_EQ(decoded.flexibility, outcome.flexibility);
  EXPECT_EQ(decoded.seed, outcome.seed);
  EXPECT_EQ(decoded.wall_seconds, outcome.wall_seconds);
  EXPECT_EQ(decoded.failed, outcome.failed);
  EXPECT_EQ(decoded.failure_reason, outcome.failure_reason);
  EXPECT_EQ(decoded.retries, outcome.retries);
  EXPECT_EQ(decoded.timed_out, outcome.timed_out);
  EXPECT_EQ(decoded.result.status, r.status);
  EXPECT_EQ(decoded.result.has_solution, r.has_solution);
  EXPECT_EQ(decoded.result.accepted_requests, r.accepted_requests);
  EXPECT_EQ(decoded.result.objective, r.objective);
  EXPECT_EQ(decoded.result.best_bound, r.best_bound);
  EXPECT_TRUE(std::isinf(decoded.result.gap));
  EXPECT_EQ(decoded.result.seconds, r.seconds);
  EXPECT_EQ(decoded.result.nodes, r.nodes);
  EXPECT_EQ(decoded.result.lp_pivots, r.lp_pivots);
  EXPECT_EQ(decoded.result.lp_iterations, r.lp_iterations);
  EXPECT_EQ(decoded.result.dual_fallbacks, r.dual_fallbacks);
  EXPECT_EQ(decoded.result.refactorizations, r.refactorizations);
  EXPECT_EQ(decoded.result.basis_updates, r.basis_updates);
  EXPECT_EQ(decoded.result.lp_basis_fill_max, r.lp_basis_fill_max);
  EXPECT_EQ(decoded.result.lp_recoveries, r.lp_recoveries);
  EXPECT_EQ(decoded.result.numerical_drops, r.numerical_drops);
  EXPECT_EQ(decoded.result.model_vars, r.model_vars);
  EXPECT_EQ(decoded.result.model_constraints, r.model_constraints);
  EXPECT_EQ(decoded.result.model_integer_vars, r.model_integer_vars);
  EXPECT_EQ(decoded.result.presolve_rows_removed, r.presolve_rows_removed);
  EXPECT_EQ(decoded.result.presolve_cols_removed, r.presolve_cols_removed);
  EXPECT_EQ(decoded.result.presolve_coeffs_tightened,
            r.presolve_coeffs_tightened);
  EXPECT_EQ(decoded.result.presolve_bounds_tightened,
            r.presolve_bounds_tightened);
  EXPECT_EQ(decoded.result.presolve_infeasible, r.presolve_infeasible);
  EXPECT_EQ(decoded.result.presolve_seconds, r.presolve_seconds);
}

TEST_F(CheckpointTest, DecodesRecordsFromJournalsWithoutBasisFields) {
  // Journals written before the basis telemetry existed carry no
  // basis_updates/basis_fill fields; resuming them must still decode the
  // cell (with the new counters zeroed) instead of re-solving it.
  ScenarioOutcome outcome;
  outcome.flexibility = 1.0;
  outcome.seed = 2;
  outcome.result.status = mip::MipStatus::kOptimal;
  outcome.result.basis_updates = 99;
  outcome.result.lp_basis_fill_max = 3.5;
  CellRecord record = encode_outcome("cSigma", 0, outcome);
  record.fields.erase("basis_updates");
  record.fields.erase("basis_fill");

  ScenarioOutcome decoded;
  ASSERT_TRUE(decode_outcome(record, decoded));
  EXPECT_EQ(decoded.result.basis_updates, 0);
  EXPECT_EQ(decoded.result.lp_basis_fill_max, 0.0);
}

TEST_F(CheckpointTest, GreedyOutcomeCodecRoundTrips) {
  GreedyOutcome outcome;
  outcome.flexibility = 2.0;
  outcome.seed = 1;
  outcome.wall_seconds = 0.5;
  outcome.result.accepted = 3;
  outcome.result.complete = true;
  outcome.result.total_seconds = 0.25;
  outcome.result.iteration_seconds = {0.1, 1.0 / 7.0, 0.0009765625};

  auto journal = SweepJournal::create(path_, 1);
  ASSERT_TRUE(journal->append(encode_outcome("greedy", 1, outcome)));
  auto reloaded = SweepJournal::resume(path_, 1);
  const CellRecord* got = reloaded->find({"greedy", 1, 1});
  ASSERT_NE(got, nullptr);
  GreedyOutcome decoded;
  ASSERT_TRUE(decode_outcome(*got, decoded));
  EXPECT_EQ(decoded.result.accepted, 3);
  EXPECT_TRUE(decoded.result.complete);
  EXPECT_EQ(decoded.result.total_seconds, 0.25);
  ASSERT_EQ(decoded.result.iteration_seconds.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_EQ(decoded.result.iteration_seconds[i],
              outcome.result.iteration_seconds[i])
        << i;
}

TEST_F(CheckpointTest, CrossKindDecodeIsRejected) {
  GreedyOutcome greedy_outcome;
  greedy_outcome.seed = 0;
  const CellRecord record = encode_outcome("greedy", 0, greedy_outcome);
  ScenarioOutcome scenario;
  EXPECT_FALSE(decode_outcome(record, scenario));
}

// End-to-end: a sweep journals every cell; after a simulated crash that
// tears the last record, the resumed sweep re-solves ONLY the torn cell
// and reproduces the uninterrupted outcomes field for field.
TEST_F(CheckpointTest, ResumedSweepSkipsJournaledCellsAndMatches) {
  SweepConfig config = tiny_config();
  std::atomic<int> solves{0};
  config.solve_override = [&](const net::TvnepInstance& instance,
                              core::ModelKind kind,
                              const core::SolveParams& params) {
    ++solves;
    return core::solve(instance, kind, params);
  };
  const std::uint64_t fingerprint = sweep_fingerprint(config, "test");
  config.journal = SweepJournal::create(path_, fingerprint);
  const auto uninterrupted = run_model_sweep(config, core::ModelKind::kCSigma);
  EXPECT_EQ(solves.load(), 4);

  // Crash simulation: the record being appended when the process died.
  std::string content = read_all(path_);
  content.resize(content.size() - 30);
  {
    std::ofstream out(path_, std::ios::trunc);
    out << content;
  }

  solves = 0;
  config.journal = SweepJournal::resume(path_, fingerprint);
  EXPECT_EQ(config.journal->loaded(), 3u);
  std::size_t resumed_in_progress = 0;
  const auto resumed = run_model_sweep(
      config, core::ModelKind::kCSigma,
      [&](const ScenarioOutcome&, const SweepProgress& progress) {
        resumed_in_progress = progress.resumed;
      });
  EXPECT_EQ(solves.load(), 1);  // only the torn cell is re-solved
  EXPECT_EQ(resumed_in_progress, 3u);
  ASSERT_EQ(resumed.size(), uninterrupted.size());
  int resumed_cells = 0;
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    SCOPED_TRACE(i);
    if (resumed[i].resumed) ++resumed_cells;
    EXPECT_EQ(resumed[i].flexibility, uninterrupted[i].flexibility);
    EXPECT_EQ(resumed[i].seed, uninterrupted[i].seed);
    EXPECT_EQ(resumed[i].failed, uninterrupted[i].failed);
    EXPECT_EQ(resumed[i].result.status, uninterrupted[i].result.status);
    EXPECT_EQ(resumed[i].result.objective, uninterrupted[i].result.objective);
    EXPECT_EQ(resumed[i].result.best_bound,
              uninterrupted[i].result.best_bound);
    EXPECT_EQ(resumed[i].result.nodes, uninterrupted[i].result.nodes);
    EXPECT_EQ(resumed[i].result.lp_pivots,
              uninterrupted[i].result.lp_pivots);
    EXPECT_EQ(resumed[i].result.accepted_requests,
              uninterrupted[i].result.accepted_requests);
    // Resumed cells restore even the original run's timing fields.
    if (resumed[i].resumed) {
      EXPECT_EQ(resumed[i].wall_seconds, uninterrupted[i].wall_seconds);
      EXPECT_EQ(resumed[i].result.seconds, uninterrupted[i].result.seconds);
    }
  }
  EXPECT_EQ(resumed_cells, 3);
}

// A journal written under one config must not silently feed a sweep run
// under another — the sweep-level guard behind the CSV-consistency
// acceptance criterion.
TEST_F(CheckpointTest, ResumingIncompatibleSweepConfigThrows) {
  SweepConfig config = tiny_config();
  { auto journal = SweepJournal::create(path_, sweep_fingerprint(config, "t")); }
  SweepConfig changed = config;
  changed.lp_fault_period = 40;
  EXPECT_THROW(SweepJournal::resume(path_, sweep_fingerprint(changed, "t")),
               ParseError);
}

}  // namespace
}  // namespace tvnep::eval
