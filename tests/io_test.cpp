#include <gtest/gtest.h>

#include <sstream>

#include "io/instance_io.hpp"
#include "io/mps_writer.hpp"
#include "net/topology.hpp"
#include "support/check.hpp"
#include "support/parse_error.hpp"
#include "tvnep/solver.hpp"
#include "workload/generator.hpp"

namespace tvnep::io {
namespace {

net::TvnepInstance sample_instance() {
  workload::WorkloadParams params;
  params.grid_rows = 2;
  params.grid_cols = 2;
  params.num_requests = 3;
  params.star_leaves = 2;
  params.seed = 5;
  params.flexibility = 1.5;
  return workload::generate_workload(params);
}

TEST(InstanceIo, RoundTripsExactly) {
  const net::TvnepInstance original = sample_instance();
  std::stringstream buffer;
  write_instance(original, buffer);
  const net::TvnepInstance loaded = read_instance(buffer);

  EXPECT_EQ(loaded.substrate().num_nodes(), original.substrate().num_nodes());
  EXPECT_EQ(loaded.substrate().num_links(), original.substrate().num_links());
  EXPECT_DOUBLE_EQ(loaded.horizon(), original.horizon());
  ASSERT_EQ(loaded.num_requests(), original.num_requests());
  for (int r = 0; r < original.num_requests(); ++r) {
    const auto& a = original.request(r);
    const auto& b = loaded.request(r);
    EXPECT_EQ(a.name(), b.name());
    EXPECT_DOUBLE_EQ(a.earliest_start(), b.earliest_start());
    EXPECT_DOUBLE_EQ(a.latest_end(), b.latest_end());
    EXPECT_DOUBLE_EQ(a.duration(), b.duration());
    ASSERT_EQ(a.num_nodes(), b.num_nodes());
    for (int v = 0; v < a.num_nodes(); ++v)
      EXPECT_DOUBLE_EQ(a.node_demand(v), b.node_demand(v));
    ASSERT_EQ(a.num_links(), b.num_links());
    for (int e = 0; e < a.num_links(); ++e) {
      EXPECT_EQ(a.link(e).from, b.link(e).from);
      EXPECT_EQ(a.link(e).to, b.link(e).to);
      EXPECT_DOUBLE_EQ(a.link(e).demand, b.link(e).demand);
    }
    ASSERT_EQ(original.has_fixed_mapping(r), loaded.has_fixed_mapping(r));
    if (original.has_fixed_mapping(r))
      EXPECT_EQ(original.fixed_mapping(r), loaded.fixed_mapping(r));
  }
}

TEST(InstanceIo, RoundTripPreservesOptimum) {
  const net::TvnepInstance original = sample_instance();
  std::stringstream buffer;
  write_instance(original, buffer);
  const net::TvnepInstance loaded = read_instance(buffer);

  core::SolveParams params;
  params.time_limit_seconds = 60.0;
  const auto a = core::solve(original, core::ModelKind::kCSigma, params);
  const auto b = core::solve(loaded, core::ModelKind::kCSigma, params);
  ASSERT_EQ(a.status, mip::MipStatus::kOptimal);
  ASSERT_EQ(b.status, mip::MipStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-7);
}

TEST(InstanceIo, FreePlacementRoundTrips) {
  net::TvnepInstance inst(net::make_grid(2, 2, 1.0, 1.0), 5.0);
  net::VnetRequest r("free");
  r.add_node(0.5);
  r.set_temporal(0.0, 4.0, 2.0);
  inst.add_request(r);  // no mapping line expected
  std::stringstream buffer;
  write_instance(inst, buffer);
  EXPECT_EQ(buffer.str().find("mapping"), std::string::npos);
  const net::TvnepInstance loaded = read_instance(buffer);
  EXPECT_FALSE(loaded.has_fixed_mapping(0));
}

// Parses `text` expecting a structured failure; returns the ParseError so
// callers can assert on its source/line/column annotations.
ParseError expect_parse_error(const std::string& text,
                              const std::string& source = "<instance>") {
  std::stringstream buffer(text);
  try {
    read_instance(buffer, source);
  } catch (const ParseError& e) {
    return e;
  }
  ADD_FAILURE() << "expected ParseError for: " << text;
  return ParseError("", 0, 0, "");
}

TEST(InstanceIo, RejectsBadHeader) {
  const ParseError e = expect_parse_error("not-a-tvnep-file\n");
  EXPECT_EQ(e.line(), 1);
  EXPECT_NE(e.message().find("tvnep 1"), std::string::npos);
}

TEST(InstanceIo, RejectsUnknownKeyword) {
  const ParseError e = expect_parse_error("tvnep 1\nbogus 1 2 3\n");
  EXPECT_EQ(e.line(), 2);
  EXPECT_EQ(e.column(), 1);
  EXPECT_NE(e.message().find("bogus"), std::string::npos);
}

TEST(InstanceIo, RejectsDanglingVnode) {
  const ParseError e = expect_parse_error("tvnep 1\nhorizon 5\nvnode 1.0\n");
  EXPECT_EQ(e.line(), 3);
  EXPECT_NE(e.message().find("vnode before any request"), std::string::npos);
}

TEST(InstanceIo, MalformedNumberPointsAtItsColumn) {
  // "3.5x" is a strict-parse failure, not a silent 3.5: the previous
  // operator>> reader accepted the prefix and dropped the garbage.
  const ParseError e =
      expect_parse_error("tvnep 1\nhorizon 5\nsubstrate-node 3.5x\n");
  EXPECT_EQ(e.line(), 3);
  EXPECT_EQ(e.column(), 16);  // first char of the offending token
  EXPECT_NE(e.message().find("'3.5x'"), std::string::npos);
  // The formatted what() carries the full source:line:column prefix.
  EXPECT_NE(std::string(e.what()).find("<instance>:3:16"), std::string::npos);
}

TEST(InstanceIo, MissingFieldIsReported) {
  const ParseError e =
      expect_parse_error("tvnep 1\nhorizon 5\nsubstrate-link 0 1\n");
  EXPECT_EQ(e.line(), 3);
  EXPECT_NE(e.message().find("missing capacity field"), std::string::npos);
}

TEST(InstanceIo, TrailingFieldIsReported) {
  const ParseError e = expect_parse_error("tvnep 1\nhorizon 5 extra\n");
  EXPECT_EQ(e.line(), 2);
  EXPECT_EQ(e.column(), 11);
  EXPECT_NE(e.message().find("unexpected trailing field 'extra'"),
            std::string::npos);
}

TEST(InstanceIo, SourceLabelPropagatesIntoErrors) {
  const ParseError e =
      expect_parse_error("tvnep 1\nhorizon oops\n", "workload.tvnep");
  EXPECT_EQ(e.source(), "workload.tvnep");
  EXPECT_EQ(e.line(), 2);
  EXPECT_EQ(std::string(e.what()).rfind("workload.tvnep:2", 0), 0u);
}

TEST(InstanceIo, CommentsAndBlankLinesKeepLineNumbersHonest) {
  const ParseError e = expect_parse_error(
      "tvnep 1\n# a comment\n\nhorizon 5\nvlink 0 1 2.0\n");
  EXPECT_EQ(e.line(), 5);
  EXPECT_NE(e.message().find("vlink before any request"), std::string::npos);
}

TEST(MpsWriter, ContainsAllSections) {
  mip::Model m;
  const mip::Var x = m.add_binary("x");
  const mip::Var y = m.add_continuous(0.0, 4.0, "y");
  m.add_constr(2.0 * x + y <= 5.0);
  m.add_constr(x + y >= 1.0);
  m.add_constr(1.0 * y == 2.0);
  m.set_objective(mip::Sense::kMaximize, 3.0 * x + y);

  std::stringstream buffer;
  write_mps(m, buffer, "test");
  const std::string mps = buffer.str();
  for (const char* section :
       {"NAME", "OBJSENSE", "MAX", "ROWS", "COLUMNS", "RHS", "BOUNDS",
        "ENDATA", "'INTORG'", "'INTEND'"})
    EXPECT_NE(mps.find(section), std::string::npos) << section;
  // Three constraint rows plus the objective row.
  EXPECT_NE(mps.find(" L  c0"), std::string::npos);
  EXPECT_NE(mps.find(" G  c1"), std::string::npos);
  EXPECT_NE(mps.find(" E  c2"), std::string::npos);
}

TEST(MpsWriter, RangedRowsEmitRanges) {
  mip::Model m;
  const mip::Var x = m.add_continuous(0.0, 10.0, "x");
  mip::Constraint c{mip::LinExpr(x), 2.0, 7.0};
  m.add_constr(c);
  m.set_objective(mip::Sense::kMinimize, mip::LinExpr(x));
  std::stringstream buffer;
  write_mps(m, buffer);
  EXPECT_NE(buffer.str().find("RANGES"), std::string::npos);
  EXPECT_NE(buffer.str().find("rng  c0  5"), std::string::npos);
}

TEST(MpsWriter, GoldenRangedModel) {
  // Full-file golden for a model with a ranged row: locks down the exact
  // section order, synthetic names, integer markers and the RANGES width
  // (upper - lower) the writer emits.
  mip::Model m;
  const mip::Var x = m.add_binary("x");
  const mip::Var y = m.add_continuous(0.0, 4.0, "y");
  m.add_constr(mip::Constraint{mip::LinExpr(x) + 2.0 * y, 1.0, 5.0});
  m.add_constr(1.0 * y == 2.0);
  m.set_objective(mip::Sense::kMinimize, mip::LinExpr(x) + 1.0 * y);

  std::stringstream buffer;
  write_mps(m, buffer, "golden");
  const std::string expected =
      "NAME          golden\n"
      "OBJSENSE\n"
      "    MIN\n"
      "ROWS\n"
      " N  obj\n"
      " L  c0\n"
      " E  c1\n"
      "COLUMNS\n"
      "    MARKER0    'MARKER'    'INTORG'\n"
      "    x0  obj  1\n"
      "    x0  c0  1\n"
      "    MARKER1    'MARKER'    'INTEND'\n"
      "    x1  obj  1\n"
      "    x1  c0  2\n"
      "    x1  c1  1\n"
      "RHS\n"
      "    rhs  c0  5\n"
      "    rhs  c1  2\n"
      "RANGES\n"
      "    rng  c0  4\n"
      "BOUNDS\n"
      " UP  bnd  x0  1\n"
      " UP  bnd  x1  4\n"
      "ENDATA\n";
  EXPECT_EQ(buffer.str(), expected);
}

TEST(MpsWriter, WritesFormulationWithoutError) {
  const net::TvnepInstance inst = sample_instance();
  const auto formulation =
      core::build_formulation(inst, core::ModelKind::kCSigma, {});
  std::stringstream buffer;
  write_mps(formulation->model(), buffer, "csigma");
  EXPECT_GT(buffer.str().size(), 1000u);
  EXPECT_NE(buffer.str().find("ENDATA"), std::string::npos);
}

}  // namespace
}  // namespace tvnep::io
