// Numerical-resilience tests: geometric-mean scaling on ill-conditioned
// LPs and the staged recovery ladder driven through the deterministic
// fault-injection seam (SimplexOptions::fault_hook).
//
// The ladder tests rely on an invariant of solve(): a solve attempt that
// fails numerically consumes exactly one failing hook consultation (both
// pivot loops consult the hook before they can detect optimality), so a
// hook that fails its first k calls exercises exactly the first k ladder
// rungs — the initial attempt plus rungs 1..k-1 each eat one failure and
// the k-th attempt succeeds.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "lp/simplex.hpp"
#include "support/rng.hpp"

namespace tvnep::lp {
namespace {

// Hook failing its first `k` consultations, then passing forever.
std::function<bool(long)> fail_first(int k) {
  auto calls = std::make_shared<long>(0);
  return [calls, k](long) { return (*calls)++ < static_cast<long>(k); };
}

// A small fixed LP with a unique known optimum:
//   min -x0 - 2 x1   s.t.  x0 + x1 <= 4,  x1 <= 3,  0 <= x <= 10
// Optimum at (1, 3) with objective -7.
Problem make_reference_lp() {
  Problem p;
  p.add_column(0.0, 10.0, -1.0);
  p.add_column(0.0, 10.0, -2.0);
  p.add_row(-kInfinity, 4.0, {{0, 1.0}, {1, 1.0}});
  p.add_row(-kInfinity, 3.0, {{1, 1.0}});
  p.finalize();
  return p;
}

struct IllConditionedLp {
  Problem problem;
  int n = 0;
  int m = 0;
};

// A random LP whose rows and columns are stretched by factors spanning
// 1e-6..1e6 — the regime equilibration exists for. Bounds/costs follow the
// stretch so the instance stays feasible and bounded.
IllConditionedLp make_ill_conditioned_lp(Rng& rng) {
  IllConditionedLp out;
  out.n = static_cast<int>(rng.uniform_int(2, 5));
  out.m = static_cast<int>(rng.uniform_int(1, 4));
  std::vector<double> col_mag(static_cast<std::size_t>(out.n));
  for (int j = 0; j < out.n; ++j) {
    const int e = static_cast<int>(rng.uniform_int(-6, 6));
    col_mag[static_cast<std::size_t>(j)] = std::pow(10.0, e);
  }
  for (int j = 0; j < out.n; ++j) {
    const double mag = col_mag[static_cast<std::size_t>(j)];
    const double lo = static_cast<double>(rng.uniform_int(-2, 1)) * mag;
    const double hi = lo + static_cast<double>(rng.uniform_int(1, 4)) * mag;
    const double cost =
        static_cast<double>(rng.uniform_int(-3, 3)) / mag;
    out.problem.add_column(lo, hi, cost);
  }
  for (int i = 0; i < out.m; ++i) {
    const double row_mag =
        std::pow(10.0, static_cast<double>(rng.uniform_int(-6, 6)));
    std::vector<std::pair<int, double>> coeffs;
    double slack = 0.0;  // row upper bound that keeps the box feasible
    for (int j = 0; j < out.n; ++j) {
      const double c = static_cast<double>(rng.uniform_int(-3, 3));
      if (c == 0.0) continue;
      const double scaled =
          c * row_mag / col_mag[static_cast<std::size_t>(j)];
      coeffs.emplace_back(j, scaled);
      const auto& col = out.problem.column(j);
      slack += std::max(scaled * col.lower, scaled * col.upper);
    }
    if (coeffs.empty()) continue;
    out.problem.add_row(-kInfinity, slack, coeffs);
  }
  out.problem.finalize();
  return out;
}

bool solution_feasible(const Problem& problem,
                       const std::vector<double>& x) {
  for (int j = 0; j < problem.num_columns(); ++j) {
    const auto& col = problem.column(j);
    const double scale = std::max(1.0, std::fabs(col.upper));
    if (x[static_cast<std::size_t>(j)] < col.lower - 1e-6 * scale)
      return false;
    if (x[static_cast<std::size_t>(j)] > col.upper + 1e-6 * scale)
      return false;
  }
  for (int i = 0; i < problem.matrix().rows(); ++i) {
    double activity = 0.0;
    double magnitude = 1.0;
    for (const auto& entry : problem.matrix().row(i)) {
      activity += entry.value * x[static_cast<std::size_t>(entry.index)];
      magnitude = std::max(
          magnitude,
          std::fabs(entry.value * x[static_cast<std::size_t>(entry.index)]));
    }
    if (activity < problem.row(i).lower - 1e-6 * magnitude) return false;
    if (activity > problem.row(i).upper + 1e-6 * magnitude) return false;
  }
  return true;
}

TEST(SimplexScaling, MatchesUnscaledOptimaOnIllConditionedLps) {
  Rng rng(4242);
  int compared = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const IllConditionedLp lp = make_ill_conditioned_lp(rng);

    SimplexOptions scaled_opts;
    scaled_opts.scaling = true;
    Simplex scaled(lp.problem, scaled_opts);
    const SolveStatus scaled_status = scaled.solve();

    SimplexOptions unscaled_opts;
    unscaled_opts.scaling = false;
    Simplex unscaled(lp.problem, unscaled_opts);
    const SolveStatus unscaled_status = unscaled.solve();

    // The unscaled solve is allowed to be the weaker one on this regime;
    // whenever it does find the optimum, scaling must agree with it.
    if (unscaled_status != SolveStatus::kOptimal) continue;
    ASSERT_EQ(scaled_status, SolveStatus::kOptimal) << "trial " << trial;
    const double reference = unscaled.objective();
    const double tol = 1e-6 * std::max(1.0, std::fabs(reference));
    EXPECT_NEAR(scaled.objective(), reference, tol) << "trial " << trial;
    EXPECT_TRUE(solution_feasible(lp.problem, scaled.primal_solution()))
        << "trial " << trial;
    ++compared;
  }
  EXPECT_GT(compared, 100);
}

TEST(SimplexScaling, SolutionAndDualsComeBackInOriginalUnits) {
  // Column units differ by 1e8; the optimum is still (1, 3)-shaped after
  // stretching: min -x0 - 2e4*x1 s.t. x0 + 1e4*x1 <= 4, 1e4*x1 <= 3.
  Problem p;
  p.add_column(0.0, 10.0, -1.0);
  p.add_column(0.0, 1e-3, -2e4);
  p.add_row(-kInfinity, 4.0, {{0, 1.0}, {1, 1e4}});
  p.add_row(-kInfinity, 3.0, {{1, 1e4}});
  p.finalize();

  Simplex s(p);
  ASSERT_EQ(s.solve(), SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective(), -7.0, 1e-8);
  EXPECT_NEAR(s.value(0), 1.0, 1e-8);
  EXPECT_NEAR(s.value(1), 3e-4, 1e-12);
  // Duals in original row units: y = (-1, -1) for rows (<=4, <=3).
  EXPECT_NEAR(s.dual_value(0), -1.0, 1e-8);
  EXPECT_NEAR(s.dual_value(1), -1.0, 1e-8);
  // Bound queries round-trip through the scaling unchanged.
  EXPECT_DOUBLE_EQ(s.working_lower(1), 0.0);
  EXPECT_DOUBLE_EQ(s.working_upper(1), 1e-3);
}

TEST(SimplexScaling, SetCostAndSetBoundsOperateInOriginalUnits) {
  Problem p;
  p.add_column(0.0, 1e6, -1e-6);
  p.add_column(0.0, 2.0, 0.0);
  p.add_row(-kInfinity, 1e6, {{0, 1.0}, {1, 1e5}});
  p.finalize();

  Simplex s(p);
  ASSERT_EQ(s.solve(), SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective(), -1.0, 1e-9);

  // Flip the second column into the objective and cap the first.
  s.set_cost(1, -10.0);
  s.set_bounds(0, 0.0, 0.0);
  ASSERT_EQ(s.solve(), SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective(), -20.0, 1e-9);
  EXPECT_NEAR(s.value(1), 2.0, 1e-9);
}

// --- Recovery-ladder tests --------------------------------------------

struct LadderOutcome {
  SolveStatus status = SolveStatus::kNumericalFailure;
  SolveStats stats;
  double objective = 0.0;
};

LadderOutcome run_ladder(int failures, bool recovery = true) {
  const Problem p = make_reference_lp();
  SimplexOptions opts;
  opts.recovery = recovery;
  opts.fault_hook = fail_first(failures);
  Simplex s(p, opts);
  LadderOutcome out;
  out.status = s.solve();
  out.stats = s.stats();
  out.objective = s.objective();
  return out;
}

TEST(SimplexRecovery, FirstFailureIsClearedByRefactorize) {
  const LadderOutcome out = run_ladder(1);
  EXPECT_EQ(out.status, SolveStatus::kOptimal);
  EXPECT_NEAR(out.objective, -7.0, 1e-9);
  EXPECT_EQ(out.stats.recover_refactorize, 1);
  EXPECT_EQ(out.stats.recover_bland, 0);
  EXPECT_EQ(out.stats.recover_perturb, 0);
  EXPECT_EQ(out.stats.recover_cold, 0);
  EXPECT_EQ(out.stats.recoveries(), 1);
}

TEST(SimplexRecovery, SecondFailureEscalatesToBland) {
  const LadderOutcome out = run_ladder(2);
  EXPECT_EQ(out.status, SolveStatus::kOptimal);
  EXPECT_NEAR(out.objective, -7.0, 1e-9);
  EXPECT_EQ(out.stats.recover_refactorize, 1);
  EXPECT_EQ(out.stats.recover_bland, 1);
  EXPECT_EQ(out.stats.recover_perturb, 0);
  EXPECT_EQ(out.stats.recover_cold, 0);
}

TEST(SimplexRecovery, ThirdFailureEscalatesToPerturbation) {
  const LadderOutcome out = run_ladder(3);
  EXPECT_EQ(out.status, SolveStatus::kOptimal);
  EXPECT_NEAR(out.objective, -7.0, 1e-9);
  EXPECT_EQ(out.stats.recover_refactorize, 1);
  EXPECT_EQ(out.stats.recover_bland, 1);
  EXPECT_EQ(out.stats.recover_perturb, 1);
  EXPECT_EQ(out.stats.recover_cold, 0);
}

TEST(SimplexRecovery, FourthFailureEscalatesToColdRestart) {
  const LadderOutcome out = run_ladder(4);
  EXPECT_EQ(out.status, SolveStatus::kOptimal);
  EXPECT_NEAR(out.objective, -7.0, 1e-9);
  EXPECT_EQ(out.stats.recover_refactorize, 1);
  EXPECT_EQ(out.stats.recover_bland, 1);
  EXPECT_EQ(out.stats.recover_perturb, 1);
  EXPECT_EQ(out.stats.recover_cold, 1);
}

TEST(SimplexRecovery, ExhaustedLadderReportsNumericalFailure) {
  const LadderOutcome out = run_ladder(1000);
  EXPECT_EQ(out.status, SolveStatus::kNumericalFailure);
  EXPECT_EQ(out.stats.recover_refactorize, 1);
  EXPECT_EQ(out.stats.recover_bland, 1);
  EXPECT_EQ(out.stats.recover_perturb, 1);
  EXPECT_EQ(out.stats.recover_cold, 1);
  EXPECT_EQ(out.stats.recoveries(), 4);
}

TEST(SimplexRecovery, DisabledRecoverySurfacesTheRawFailure) {
  const LadderOutcome out = run_ladder(1, /*recovery=*/false);
  EXPECT_EQ(out.status, SolveStatus::kNumericalFailure);
  EXPECT_EQ(out.stats.recoveries(), 0);
}

TEST(SimplexRecovery, StatsResetBetweenSolves) {
  const Problem p = make_reference_lp();
  SimplexOptions opts;
  opts.fault_hook = fail_first(1);
  Simplex s(p, opts);
  ASSERT_EQ(s.solve(), SolveStatus::kOptimal);
  ASSERT_EQ(s.stats().recoveries(), 1);
  // The hook has burned its failure; the next solve must be clean.
  ASSERT_EQ(s.solve(), SolveStatus::kOptimal);
  EXPECT_EQ(s.stats().recoveries(), 0);
  EXPECT_NEAR(s.objective(), -7.0, 1e-9);
}

TEST(SimplexRecovery, PerturbRungRestoresWorkingBounds) {
  const Problem p = make_reference_lp();
  SimplexOptions opts;
  opts.fault_hook = fail_first(3);  // rung 3 (perturb) clears the failure
  Simplex s(p, opts);
  s.set_bounds(0, 0.0, 0.5);  // binds: unconstrained optimum has x0 = 1
  ASSERT_EQ(s.solve(), SolveStatus::kOptimal);
  ASSERT_EQ(s.stats().recover_perturb, 1);
  // The perturbation must not leak into the working bounds or the
  // reported solution.
  EXPECT_DOUBLE_EQ(s.working_lower(0), 0.0);
  EXPECT_DOUBLE_EQ(s.working_upper(0), 0.5);
  EXPECT_LE(s.value(0), 0.5 + 1e-9);
  EXPECT_NEAR(s.objective(), -6.5, 1e-8);  // x = (0.5, 3)
}

TEST(SimplexRecovery, WarmStartedResolveRecoversToo) {
  // Fail the first consultation of the *second* solve: the warm dual
  // attempt dies and the ladder must still land on the right optimum.
  const Problem p = make_reference_lp();
  auto calls = std::make_shared<long>(0);
  auto fail_at = std::make_shared<long>(-1);
  SimplexOptions opts;
  opts.fault_hook = [calls, fail_at](long) {
    const long c = (*calls)++;
    return *fail_at >= 0 && c == *fail_at;
  };
  Simplex s(p, opts);
  ASSERT_EQ(s.solve(), SolveStatus::kOptimal);
  *fail_at = *calls;  // next consultation fails
  s.set_bounds(1, 0.0, 1.0);
  ASSERT_EQ(s.solve(), SolveStatus::kOptimal);
  EXPECT_GE(s.stats().recoveries(), 1);
  EXPECT_NEAR(s.objective(), -5.0, 1e-8);  // x = (3, 1)
}

// --- Basis-update fault seam ------------------------------------------
//
// SimplexOptions::basis_update_fault_hook makes the post-pivot eta update
// report failure, driving the simplex down its refactorize-instead path —
// the same path a genuine Forrest-Tomlin/eta refusal (tiny pivot, budget
// exhausted, runaway eta fill) takes.

TEST(SimplexBasisUpdateFault, RefusedUpdateFallsBackToRefactorize) {
  for (const BasisBackend backend :
       {BasisBackend::kSparseLu, BasisBackend::kDenseInverse}) {
    const Problem p = make_reference_lp();
    SimplexOptions opts;
    opts.basis = backend;
    opts.basis_update_fault_hook = fail_first(1);
    Simplex s(p, opts);
    ASSERT_EQ(s.solve(), SolveStatus::kOptimal);
    EXPECT_NEAR(s.objective(), -7.0, 1e-9);
    // The refusal is absorbed below the recovery ladder: the update's
    // refactorization fallback clears it without a failed attempt.
    EXPECT_GE(s.stats().refactorizations, 1);
    EXPECT_EQ(s.stats().recoveries(), 0);
  }
}

TEST(SimplexBasisUpdateFault, EveryUpdateRefusedStillSolves) {
  for (const BasisBackend backend :
       {BasisBackend::kSparseLu, BasisBackend::kDenseInverse}) {
    const Problem p = make_reference_lp();
    SimplexOptions opts;
    opts.basis = backend;
    opts.basis_update_fault_hook = [](long) { return true; };
    Simplex s(p, opts);
    ASSERT_EQ(s.solve(), SolveStatus::kOptimal);
    EXPECT_NEAR(s.objective(), -7.0, 1e-9);
    EXPECT_EQ(s.stats().basis_updates, 0);  // no update ever succeeded
    EXPECT_GE(s.stats().refactorizations, 1);
  }
}

TEST(SimplexBasisUpdateFault, FaultedSolveMatchesCleanOnRandomLps) {
  Rng rng(515);
  int compared = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const IllConditionedLp lp = make_ill_conditioned_lp(rng);
    Simplex clean(lp.problem);
    if (clean.solve() != SolveStatus::kOptimal) continue;
    SimplexOptions opts;
    opts.basis_update_fault_hook = fail_first(
        static_cast<int>(rng.uniform_int(1, 5)));
    Simplex faulted(lp.problem, opts);
    ASSERT_EQ(faulted.solve(), SolveStatus::kOptimal) << "trial " << trial;
    const double tol = 1e-6 * std::max(1.0, std::fabs(clean.objective()));
    EXPECT_NEAR(faulted.objective(), clean.objective(), tol)
        << "trial " << trial;
    ++compared;
  }
  EXPECT_GT(compared, 15);
}

TEST(SimplexBasisUpdateFault, TinyUpdateBudgetForcesGenuineRefusals) {
  // refactor_interval = 1 exhausts the sparse backend's eta budget after
  // one absorbed update, so the genuine (non-hook) refusal path runs on
  // every later pivot.
  const Problem p = make_reference_lp();
  SimplexOptions opts;
  opts.refactor_interval = 1;
  Simplex s(p, opts);
  ASSERT_EQ(s.solve(), SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective(), -7.0, 1e-9);
  EXPECT_LE(s.stats().basis_updates, 1 + s.stats().refactorizations);
}

TEST(SimplexRecovery, LadderHandlesGenuineIllConditioning) {
  // Random ill-conditioned instances with injected faults on top: the
  // recovered optimum must match a clean solve of the same instance.
  Rng rng(2026);
  int recovered = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const IllConditionedLp lp = make_ill_conditioned_lp(rng);
    Simplex clean(lp.problem);
    if (clean.solve() != SolveStatus::kOptimal) continue;

    SimplexOptions opts;
    opts.fault_hook = fail_first(static_cast<int>(rng.uniform_int(1, 4)));
    Simplex faulted(lp.problem, opts);
    ASSERT_EQ(faulted.solve(), SolveStatus::kOptimal) << "trial " << trial;
    ASSERT_GE(faulted.stats().recoveries(), 1) << "trial " << trial;
    const double tol =
        1e-6 * std::max(1.0, std::fabs(clean.objective()));
    EXPECT_NEAR(faulted.objective(), clean.objective(), tol)
        << "trial " << trial;
    ++recovered;
  }
  EXPECT_GT(recovered, 30);
}

}  // namespace
}  // namespace tvnep::lp
