#include <gtest/gtest.h>

#include "eval/args.hpp"
#include "eval/runner.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"

namespace tvnep::eval {
namespace {

Args make(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, SpaceSeparatedValues) {
  const Args a = make({"--requests", "8", "--time-limit", "2.5"});
  EXPECT_EQ(a.get_int("requests", 0), 8);
  EXPECT_DOUBLE_EQ(a.get_double("time-limit", 0.0), 2.5);
}

TEST(Args, EqualsSyntax) {
  const Args a = make({"--seeds=5", "--name=fig3"});
  EXPECT_EQ(a.get_int("seeds", 0), 5);
  EXPECT_EQ(a.get_string("name", ""), "fig3");
}

TEST(Args, BooleanFlags) {
  const Args a = make({"--paper-scale", "--verbose=false"});
  EXPECT_TRUE(a.get_bool("paper-scale", false));
  EXPECT_FALSE(a.get_bool("verbose", true));
  EXPECT_TRUE(a.get_bool("absent", true));
  EXPECT_FALSE(a.get_bool("absent2", false));
}

TEST(Args, Defaults) {
  const Args a = make({});
  EXPECT_EQ(a.get_int("requests", 7), 7);
  EXPECT_EQ(a.get_string("x", "y"), "y");
  EXPECT_FALSE(a.has("requests"));
}

TEST(Args, UnusedDetection) {
  const Args a = make({"--known", "1", "--typo", "2"});
  (void)a.get_int("known", 0);
  const auto unused = a.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Args, RejectsPositionalArguments) {
  EXPECT_THROW(make({"positional"}), CheckError);
}

TEST(Args, RejectsMalformedNumbers) {
  // Strict parsing: the whole value must be numeric. `--time-limit=8s`
  // used to silently truncate to 8 via atof.
  const Args a = make({"--time-limit=8s", "--requests", "3x", "--flag"});
  EXPECT_THROW((void)a.get_double("time-limit", 0.0), CheckError);
  EXPECT_THROW((void)a.get_int("requests", 0), CheckError);
  // A bare boolean flag queried as a number is a usage error too.
  EXPECT_THROW((void)a.get_int("flag", 0), CheckError);
}

TEST(Args, ErrorNamesTheFlagAndValue) {
  const Args a = make({"--time-limit=8s"});
  try {
    (void)a.get_double("time-limit", 0.0);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("time-limit"), std::string::npos) << what;
    EXPECT_NE(what.find("8s"), std::string::npos) << what;
  }
}

TEST(Args, AcceptsWellFormedNumbers) {
  const Args a = make({"--a=-3", "--b=2.5e-2", "--c", "0"});
  EXPECT_EQ(a.get_int("a", 0), -3);
  EXPECT_DOUBLE_EQ(a.get_double("b", 0.0), 2.5e-2);
  EXPECT_EQ(a.get_int("c", 1), 0);
  // A double-valued token queried as int is rejected, not truncated.
  EXPECT_THROW((void)a.get_int("b", 0), CheckError);
}

TEST(Args, TrailingFlagIsBoolean) {
  const Args a = make({"--requests", "3", "--quick"});
  EXPECT_EQ(a.get_int("requests", 0), 3);
  EXPECT_TRUE(a.get_bool("quick", false));
}

TEST(SweepFromArgs, ThreadsFlagControlsFanOut) {
  const Args a = make({"--threads", "3"});
  const SweepConfig config = sweep_from_args(a, 4, 2, 3, 2);
  EXPECT_EQ(config.threads, 3);
  EXPECT_EQ(effective_threads(config), 3);
}

TEST(SweepFromArgs, ThreadsDefaultsToHardwareParallelism) {
  const Args a = make({});
  const SweepConfig config = sweep_from_args(a, 4, 2, 3, 2);
  EXPECT_EQ(config.threads, 0);
  EXPECT_EQ(effective_threads(config),
            static_cast<int>(hardware_parallelism()));
}

TEST(SweepFromArgs, ResilienceFlagsDefaultAndParse) {
  const SweepConfig defaults = sweep_from_args(make({}), 4, 2, 3, 2);
  EXPECT_TRUE(defaults.lp_scaling);
  EXPECT_EQ(defaults.lp_fault_period, 0);

  const SweepConfig config = sweep_from_args(
      make({"--no-lp-scaling", "--lp-fault-period", "40",
            "--lp-fault-burst", "2"}),
      4, 2, 3, 2);
  EXPECT_FALSE(config.lp_scaling);
  EXPECT_EQ(config.lp_fault_period, 40);
  EXPECT_EQ(config.lp_fault_burst, 2);
}

TEST(SweepFromArgs, RejectsDegenerateFaultInjection) {
  // A burst at least as long as the period would fail every consultation.
  EXPECT_THROW(sweep_from_args(make({"--lp-fault-period", "3",
                                     "--lp-fault-burst", "3"}),
                               4, 2, 3, 2),
               CheckError);
  EXPECT_THROW(sweep_from_args(make({"--lp-fault-period", "-1"}), 4, 2, 3, 2),
               CheckError);
}

}  // namespace
}  // namespace tvnep::eval
