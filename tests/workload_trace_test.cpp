// Replayable arrival traces: generator equivalence (the trace is the same
// RNG stream generate_workload consumes), byte-for-byte stable
// serialization, strict structured parse errors, and arrival-order
// enforcement.
#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "support/parse_error.hpp"
#include "workload/generator.hpp"

namespace tvnep::workload {
namespace {

WorkloadParams small_params() {
  WorkloadParams p;
  p.grid_rows = 3;
  p.grid_cols = 3;
  p.num_requests = 8;
  p.star_leaves = 2;
  p.flexibility = 1.5;
  p.seed = 7;
  return p;
}

void expect_same_instance(const net::TvnepInstance& a,
                          const net::TvnepInstance& b) {
  ASSERT_EQ(a.num_requests(), b.num_requests());
  EXPECT_DOUBLE_EQ(a.horizon(), b.horizon());
  for (int r = 0; r < a.num_requests(); ++r) {
    const auto& ra = a.request(r);
    const auto& rb = b.request(r);
    EXPECT_EQ(ra.name(), rb.name());
    EXPECT_DOUBLE_EQ(ra.earliest_start(), rb.earliest_start());
    EXPECT_DOUBLE_EQ(ra.latest_end(), rb.latest_end());
    EXPECT_DOUBLE_EQ(ra.duration(), rb.duration());
    ASSERT_EQ(ra.num_nodes(), rb.num_nodes());
    ASSERT_EQ(ra.num_links(), rb.num_links());
    for (int v = 0; v < ra.num_nodes(); ++v)
      EXPECT_DOUBLE_EQ(ra.node_demand(v), rb.node_demand(v));
    for (int e = 0; e < ra.num_links(); ++e) {
      EXPECT_EQ(ra.link(e).from, rb.link(e).from);
      EXPECT_EQ(ra.link(e).to, rb.link(e).to);
      EXPECT_DOUBLE_EQ(ra.link(e).demand, rb.link(e).demand);
    }
    ASSERT_EQ(a.has_fixed_mapping(r), b.has_fixed_mapping(r));
    if (a.has_fixed_mapping(r)) EXPECT_EQ(a.fixed_mapping(r), b.fixed_mapping(r));
  }
}

TEST(WorkloadTrace, MatchesGenerateWorkloadExactly) {
  const WorkloadParams p = small_params();
  const ArrivalTrace trace = make_trace(p);
  ASSERT_EQ(trace.requests.size(), 8u);
  EXPECT_EQ(trace.seed, p.seed);
  EXPECT_DOUBLE_EQ(trace.flexibility, p.flexibility);
  expect_same_instance(instance_from_trace(p, trace), generate_workload(p));
}

TEST(WorkloadTrace, ArrivalsAreSortedAndAbsolute) {
  const ArrivalTrace trace = make_trace(small_params());
  double prev = 0.0;
  for (const TraceRequest& tr : trace.requests) {
    EXPECT_GT(tr.arrival(), prev);
    EXPECT_DOUBLE_EQ(tr.request.latest_end(),
                     tr.arrival() + tr.request.duration() + 1.5);
    prev = tr.arrival();
  }
}

TEST(WorkloadTrace, RoundTripsByteForByte) {
  const ArrivalTrace trace = make_trace(small_params());
  std::ostringstream first;
  write_trace(trace, first);

  std::istringstream in(first.str());
  const ArrivalTrace reread = read_trace(in, "roundtrip");
  std::ostringstream second;
  write_trace(reread, second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(reread.seed, trace.seed);
  EXPECT_DOUBLE_EQ(reread.flexibility, trace.flexibility);

  const WorkloadParams p = small_params();
  expect_same_instance(instance_from_trace(p, reread),
                       instance_from_trace(p, trace));
}

TEST(WorkloadTrace, WriteIsDeterministicAcrossCalls) {
  std::ostringstream a, b;
  write_trace(make_trace(small_params()), a);
  write_trace(make_trace(small_params()), b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(WorkloadTrace, FileRoundTripViaSaveAndLoad) {
  const std::string path = "workload_trace_test_roundtrip.trace";
  const ArrivalTrace trace = make_trace(small_params());
  save_trace(trace, path);
  const ArrivalTrace loaded = load_trace(path);
  std::ostringstream a, b;
  write_trace(trace, a);
  write_trace(loaded, b);
  EXPECT_EQ(a.str(), b.str());
  std::remove(path.c_str());
}

TEST(WorkloadTrace, RejectsMissingHeader) {
  std::istringstream in("request R0 1 2 1\n");
  EXPECT_THROW(read_trace(in, "bad"), ParseError);
}

TEST(WorkloadTrace, RejectsMalformedNumberWithLocation) {
  std::istringstream in(
      "tvnep-trace 1\nseed 1\nrequest R0 1.0 2.0 0.5x\n");
  try {
    read_trace(in, "bad");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("duration"), std::string::npos);
  }
}

TEST(WorkloadTrace, RejectsOutOfOrderArrivals) {
  std::istringstream in(
      "tvnep-trace 1\n"
      "request R0 5.0 7.0 1.0\n"
      "vnode 1.0\n"
      "request R1 4.0 6.0 1.0\n"
      "vnode 1.0\n");
  EXPECT_THROW(read_trace(in, "bad"), ParseError);
}

TEST(WorkloadTrace, UnmappedWorkloadsStayUnmapped) {
  WorkloadParams p = small_params();
  p.fix_node_mappings = false;
  const ArrivalTrace trace = make_trace(p);
  for (const TraceRequest& tr : trace.requests)
    EXPECT_FALSE(tr.mapping.has_value());
  expect_same_instance(instance_from_trace(p, trace), generate_workload(p));
}

}  // namespace
}  // namespace tvnep::workload
