#include <gtest/gtest.h>

#include "workload/generator.hpp"

namespace tvnep::workload {
namespace {

WorkloadParams small_params() {
  WorkloadParams p;
  p.grid_rows = 3;
  p.grid_cols = 3;
  p.num_requests = 8;
  p.star_leaves = 2;
  p.seed = 7;
  return p;
}

TEST(Workload, PaperScaleDimensions) {
  WorkloadParams p;  // defaults are the paper's parameters
  p.seed = 1;
  const net::TvnepInstance inst = generate_workload(p);
  EXPECT_EQ(inst.substrate().num_nodes(), 20);
  EXPECT_EQ(inst.substrate().num_links(), 62);
  EXPECT_EQ(inst.num_requests(), 20);
  for (int r = 0; r < inst.num_requests(); ++r) {
    EXPECT_EQ(inst.request(r).num_nodes(), 5);
    EXPECT_EQ(inst.request(r).num_links(), 4);
    EXPECT_TRUE(inst.has_fixed_mapping(r));
  }
}

TEST(Workload, DemandsWithinConfiguredInterval) {
  const net::TvnepInstance inst = generate_workload(small_params());
  for (int r = 0; r < inst.num_requests(); ++r) {
    const auto& req = inst.request(r);
    for (int v = 0; v < req.num_nodes(); ++v) {
      EXPECT_GE(req.node_demand(v), 1.0);
      EXPECT_LE(req.node_demand(v), 2.0);
    }
    for (int e = 0; e < req.num_links(); ++e) {
      EXPECT_GE(req.link(e).demand, 1.0);
      EXPECT_LE(req.link(e).demand, 2.0);
    }
  }
}

TEST(Workload, ArrivalsAreIncreasing) {
  const net::TvnepInstance inst = generate_workload(small_params());
  double prev = -1.0;
  for (int r = 0; r < inst.num_requests(); ++r) {
    EXPECT_GT(inst.request(r).earliest_start(), prev);
    prev = inst.request(r).earliest_start();
  }
}

TEST(Workload, ZeroFlexibilityWindowsAreTight) {
  const net::TvnepInstance inst = generate_workload(small_params());
  for (int r = 0; r < inst.num_requests(); ++r)
    EXPECT_NEAR(inst.request(r).flexibility(), 0.0, 1e-12);
}

TEST(Workload, FlexibilityWidensWindowsOnly) {
  WorkloadParams p = small_params();
  const net::TvnepInstance base = generate_workload(p);
  const net::TvnepInstance flex = generate_workload_with_flexibility(p, 2.0);
  ASSERT_EQ(base.num_requests(), flex.num_requests());
  for (int r = 0; r < base.num_requests(); ++r) {
    // Same arrivals, durations, demands, mappings — only wider windows.
    EXPECT_DOUBLE_EQ(base.request(r).earliest_start(),
                     flex.request(r).earliest_start());
    EXPECT_DOUBLE_EQ(base.request(r).duration(), flex.request(r).duration());
    EXPECT_NEAR(flex.request(r).flexibility(), 2.0, 1e-12);
    EXPECT_EQ(base.fixed_mapping(r), flex.fixed_mapping(r));
    for (int v = 0; v < base.request(r).num_nodes(); ++v)
      EXPECT_DOUBLE_EQ(base.request(r).node_demand(v),
                       flex.request(r).node_demand(v));
  }
}

TEST(Workload, DeterministicInSeed) {
  const net::TvnepInstance a = generate_workload(small_params());
  const net::TvnepInstance b = generate_workload(small_params());
  for (int r = 0; r < a.num_requests(); ++r) {
    EXPECT_DOUBLE_EQ(a.request(r).earliest_start(),
                     b.request(r).earliest_start());
    EXPECT_DOUBLE_EQ(a.request(r).duration(), b.request(r).duration());
    EXPECT_EQ(a.fixed_mapping(r), b.fixed_mapping(r));
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadParams p1 = small_params();
  WorkloadParams p2 = small_params();
  p2.seed = 8;
  const net::TvnepInstance a = generate_workload(p1);
  const net::TvnepInstance b = generate_workload(p2);
  bool any_difference = false;
  for (int r = 0; r < a.num_requests(); ++r)
    if (a.request(r).earliest_start() != b.request(r).earliest_start())
      any_difference = true;
  EXPECT_TRUE(any_difference);
}

TEST(Workload, HorizonCoversAllWindows) {
  const net::TvnepInstance inst =
      generate_workload_with_flexibility(small_params(), 3.0);
  for (int r = 0; r < inst.num_requests(); ++r)
    EXPECT_LE(inst.request(r).latest_end(), inst.horizon() + 1e-12);
}

TEST(Workload, FreePlacementMode) {
  WorkloadParams p = small_params();
  p.fix_node_mappings = false;
  const net::TvnepInstance inst = generate_workload(p);
  for (int r = 0; r < inst.num_requests(); ++r)
    EXPECT_FALSE(inst.has_fixed_mapping(r));
}

TEST(Workload, StarDirectionVaries) {
  WorkloadParams p = small_params();
  p.num_requests = 30;
  const net::TvnepInstance inst = generate_workload(p);
  int towards = 0, away = 0;
  for (int r = 0; r < inst.num_requests(); ++r) {
    if (inst.request(r).link(0).to == 0) ++towards;
    else ++away;
  }
  EXPECT_GT(towards, 0);
  EXPECT_GT(away, 0);
}

}  // namespace
}  // namespace tvnep::workload
