// Randomized cross-model property tests on small TVNEP instances:
//  * every returned solution passes the independent validator,
//  * Σ and cΣ agree on the optimal access-control objective
//    (Δ included on the smallest instances),
//  * the greedy never exceeds the exact optimum,
//  * dependency cuts never change the optimum.
#include <gtest/gtest.h>

#include "greedy/greedy.hpp"
#include "tvnep/solver.hpp"
#include "workload/generator.hpp"

namespace tvnep::core {
namespace {

workload::WorkloadParams tiny_params(std::uint64_t seed, double flex) {
  workload::WorkloadParams p;
  p.grid_rows = 2;
  p.grid_cols = 2;
  p.num_requests = 3;
  p.star_leaves = 1;
  p.seed = seed;
  p.flexibility = flex;
  return p;
}

class RandomInstances : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstances, ::testing::Range(1, 9));

TEST_P(RandomInstances, SigmaAndCSigmaAgreeAndValidate) {
  const auto params = tiny_params(static_cast<std::uint64_t>(GetParam()), 1.5);
  const net::TvnepInstance inst = workload::generate_workload(params);
  SolveParams sp;
  sp.time_limit_seconds = 60.0;

  const TvnepSolveResult sigma = solve(inst, ModelKind::kSigma, sp);
  const TvnepSolveResult csigma = solve(inst, ModelKind::kCSigma, sp);
  ASSERT_EQ(sigma.status, mip::MipStatus::kOptimal);
  ASSERT_EQ(csigma.status, mip::MipStatus::kOptimal);
  EXPECT_NEAR(sigma.objective, csigma.objective, 1e-4);

  for (const auto* result : {&sigma, &csigma}) {
    const ValidationResult vr = validate_solution(inst, result->solution);
    EXPECT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors.front());
  }
}

TEST_P(RandomInstances, DeltaAgreesOnTinyInstances) {
  const auto params = tiny_params(static_cast<std::uint64_t>(GetParam()), 1.0);
  const net::TvnepInstance inst = workload::generate_workload(params);
  SolveParams sp;
  sp.time_limit_seconds = 60.0;
  const TvnepSolveResult delta = solve(inst, ModelKind::kDelta, sp);
  const TvnepSolveResult csigma = solve(inst, ModelKind::kCSigma, sp);
  ASSERT_EQ(csigma.status, mip::MipStatus::kOptimal);
  if (delta.status != mip::MipStatus::kOptimal) return;  // Δ may time out
  EXPECT_NEAR(delta.objective, csigma.objective, 1e-4);
  const ValidationResult vr = validate_solution(inst, delta.solution);
  EXPECT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors.front());
}

TEST_P(RandomInstances, GreedyNeverExceedsExactAndValidates) {
  const auto params = tiny_params(static_cast<std::uint64_t>(GetParam()), 2.0);
  const net::TvnepInstance inst = workload::generate_workload(params);

  const greedy::GreedyResult g = greedy::solve_greedy(inst);
  const ValidationResult gv = validate_solution(inst, g.solution);
  EXPECT_TRUE(gv.ok) << (gv.errors.empty() ? "" : gv.errors.front());

  SolveParams sp;
  sp.time_limit_seconds = 60.0;
  const TvnepSolveResult exact = solve(inst, ModelKind::kCSigma, sp);
  ASSERT_EQ(exact.status, mip::MipStatus::kOptimal);
  EXPECT_LE(g.solution.revenue(inst), exact.objective + 1e-4);
}

TEST_P(RandomInstances, CutsDoNotChangeTheOptimum) {
  const auto params = tiny_params(static_cast<std::uint64_t>(GetParam()), 1.5);
  const net::TvnepInstance inst = workload::generate_workload(params);
  SolveParams with;
  with.time_limit_seconds = 60.0;
  SolveParams without = with;
  without.build.dependency_cuts = false;
  without.build.pairwise_cuts = false;
  without.build.precedence_cuts = false;
  const TvnepSolveResult a = solve(inst, ModelKind::kCSigma, with);
  const TvnepSolveResult b = solve(inst, ModelKind::kCSigma, without);
  ASSERT_EQ(a.status, mip::MipStatus::kOptimal);
  ASSERT_EQ(b.status, mip::MipStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-4);
}

TEST_P(RandomInstances, MoreFlexibilityNeverHurts) {
  // The access-control optimum is monotone in the flexibility: every
  // schedule feasible with a narrow window stays feasible with a wider one.
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());
  SolveParams sp;
  sp.time_limit_seconds = 60.0;
  double previous = -1.0;
  for (const double flex : {0.0, 1.0, 2.0}) {
    const net::TvnepInstance inst =
        workload::generate_workload(tiny_params(seed, flex));
    const TvnepSolveResult r = solve(inst, ModelKind::kCSigma, sp);
    ASSERT_EQ(r.status, mip::MipStatus::kOptimal) << "flex " << flex;
    EXPECT_GE(r.objective, previous - 1e-6) << "flex " << flex;
    previous = r.objective;
  }
}

}  // namespace
}  // namespace tvnep::core
