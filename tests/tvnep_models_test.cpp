// Integration tests of the Δ/Σ/cΣ formulations on hand-crafted instances
// with known optima, plus cross-model and validator agreement.
#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "tvnep/solver.hpp"

namespace tvnep::core {
namespace {

// Single substrate node, capacity 1; unit-demand single-node requests.
// The scheduling core of the TVNEP with the embedding trivialized.
net::TvnepInstance scheduling_instance(
    const std::vector<std::tuple<double, double, double>>& windows,
    double node_capacity = 1.0) {
  net::SubstrateNetwork s;
  s.add_node(node_capacity);
  s.add_node(node_capacity);
  s.add_link(0, 1, 10.0);
  s.add_link(1, 0, 10.0);
  net::TvnepInstance inst(std::move(s), 1.0);
  for (const auto& [ts, te, d] : windows) {
    net::VnetRequest r("r" + std::to_string(inst.num_requests()));
    r.add_node(1.0);
    r.set_temporal(ts, te, d);
    inst.add_request(r, std::vector<net::NodeId>{0});
  }
  inst.fit_horizon();
  return inst;
}

SolveParams default_params() {
  SolveParams p;
  p.time_limit_seconds = 30.0;
  return p;
}

class AllModels : public ::testing::TestWithParam<ModelKind> {};

INSTANTIATE_TEST_SUITE_P(Models, AllModels,
                         ::testing::Values(ModelKind::kDelta,
                                           ModelKind::kSigma,
                                           ModelKind::kCSigma),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

TEST_P(AllModels, SingleRequestAccepted) {
  const auto inst = scheduling_instance({{0.0, 4.0, 2.0}});
  const TvnepSolveResult r = solve(inst, GetParam(), default_params());
  ASSERT_EQ(r.status, mip::MipStatus::kOptimal);
  ASSERT_TRUE(r.has_solution);
  EXPECT_EQ(r.solution.num_accepted(), 1);
  EXPECT_NEAR(r.objective, 2.0, 1e-5);  // d * node demand
  const ValidationResult vr = validate_solution(inst, r.solution);
  EXPECT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors.front());
}

TEST_P(AllModels, ConflictWithoutFlexibilityAcceptsOne) {
  // Both requests are pinned to [0, 1] on a capacity-1 node: only one fits.
  const auto inst = scheduling_instance({{0.0, 1.0, 1.0}, {0.0, 1.0, 1.0}});
  const TvnepSolveResult r = solve(inst, GetParam(), default_params());
  ASSERT_EQ(r.status, mip::MipStatus::kOptimal);
  EXPECT_EQ(r.solution.num_accepted(), 1);
  EXPECT_NEAR(r.objective, 1.0, 1e-5);
}

TEST_P(AllModels, FlexibilityEnablesBoth) {
  // Same contention, but windows [0, 2]: schedule back-to-back.
  const auto inst = scheduling_instance({{0.0, 2.0, 1.0}, {0.0, 2.0, 1.0}});
  const TvnepSolveResult r = solve(inst, GetParam(), default_params());
  ASSERT_EQ(r.status, mip::MipStatus::kOptimal);
  EXPECT_EQ(r.solution.num_accepted(), 2);
  EXPECT_NEAR(r.objective, 2.0, 1e-5);
  const ValidationResult vr = validate_solution(inst, r.solution);
  EXPECT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors.front());
  // The two schedules must not overlap.
  const auto& a = r.solution.requests[0];
  const auto& b = r.solution.requests[1];
  EXPECT_TRUE(a.end <= b.start + 1e-5 || b.end <= a.start + 1e-5);
}

TEST_P(AllModels, ThreeRequestsCapacityTwo) {
  // Capacity 2, three unit requests all pinned to [0, 1]: accept two.
  const auto inst = scheduling_instance(
      {{0.0, 1.0, 1.0}, {0.0, 1.0, 1.0}, {0.0, 1.0, 1.0}}, 2.0);
  const TvnepSolveResult r = solve(inst, GetParam(), default_params());
  ASSERT_EQ(r.status, mip::MipStatus::kOptimal);
  EXPECT_EQ(r.solution.num_accepted(), 2);
}

TEST_P(AllModels, RespectsLinkCapacityOverTime) {
  // Two 2-node requests whose virtual link needs the only substrate link
  // (capacity 1, demand 1). Windows force overlap → accept exactly one.
  net::SubstrateNetwork s;
  s.add_node(10.0);
  s.add_node(10.0);
  s.add_link(0, 1, 1.0);
  net::TvnepInstance inst(std::move(s), 4.0);
  for (int i = 0; i < 2; ++i) {
    net::VnetRequest r("r" + std::to_string(i));
    r.add_node(1.0);
    r.add_node(1.0);
    r.add_link(0, 1, 1.0);
    r.set_temporal(0.0, 3.0, 2.0);  // any two schedules overlap
    inst.add_request(r, std::vector<net::NodeId>{0, 1});
  }
  const TvnepSolveResult r = solve(inst, GetParam(), default_params());
  ASSERT_EQ(r.status, mip::MipStatus::kOptimal);
  EXPECT_EQ(r.solution.num_accepted(), 1);
  const ValidationResult vr = validate_solution(inst, r.solution);
  EXPECT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors.front());
}

TEST_P(AllModels, DependencyCutsPreserveOptimum) {
  const auto inst = scheduling_instance(
      {{0.0, 2.0, 1.0}, {1.5, 4.0, 1.0}, {3.8, 6.0, 1.5}});
  SolveParams with_cuts = default_params();
  SolveParams without_cuts = default_params();
  without_cuts.build.dependency_cuts = false;
  without_cuts.build.pairwise_cuts = false;
  without_cuts.build.precedence_cuts = false;
  const TvnepSolveResult a = solve(inst, GetParam(), with_cuts);
  const TvnepSolveResult b = solve(inst, GetParam(), without_cuts);
  ASSERT_EQ(a.status, mip::MipStatus::kOptimal);
  ASSERT_EQ(b.status, mip::MipStatus::kOptimal);
  EXPECT_NEAR(a.objective, b.objective, 1e-5);
}

TEST_P(AllModels, WindowsNeverViolated) {
  const auto inst = scheduling_instance(
      {{1.0, 5.0, 2.0}, {2.0, 8.0, 3.0}, {0.5, 9.0, 1.0}}, 2.0);
  const TvnepSolveResult r = solve(inst, GetParam(), default_params());
  ASSERT_TRUE(r.has_solution);
  for (int i = 0; i < inst.num_requests(); ++i) {
    const auto& emb = r.solution.requests[static_cast<std::size_t>(i)];
    const auto& req = inst.request(i);
    EXPECT_GE(emb.start, req.earliest_start() - 1e-5);
    EXPECT_LE(emb.end, req.latest_end() + 1e-5);
    EXPECT_NEAR(emb.end - emb.start, req.duration(), 1e-5);
  }
}

TEST_P(AllModels, ZeroAllocationEventsCannotDischargeOthers) {
  // Regression: requests hosted on *different* nodes have zero allocation
  // on each other's resources; their events must contribute exactly zero
  // state change there (a free Δ could otherwise "pre-discharge" later
  // allocations and admit an over-capacity schedule).
  net::SubstrateNetwork s;
  s.add_node(1.5);  // fits one unit-demand at a time... but duplicated below
  s.add_node(10.0);
  s.add_link(0, 1, 10.0);
  s.add_link(1, 0, 10.0);
  net::TvnepInstance inst(std::move(s), 1.0);
  // Two overlapping unit requests on node 0 (only one fits: 2 > 1.5), plus
  // two on the roomy node 1 whose events interleave with them.
  for (int i = 0; i < 2; ++i) {
    net::VnetRequest r("a" + std::to_string(i));
    r.add_node(1.0);
    r.set_temporal(0.0, 4.0, 3.0);  // any two schedules overlap
    inst.add_request(r, std::vector<net::NodeId>{0});
  }
  for (int i = 0; i < 2; ++i) {
    net::VnetRequest r("b" + std::to_string(i));
    r.add_node(1.0);
    r.set_temporal(0.5 + i, 4.0, 1.0);
    inst.add_request(r, std::vector<net::NodeId>{1});
  }
  inst.fit_horizon();
  const TvnepSolveResult r = solve(inst, GetParam(), default_params());
  ASSERT_EQ(r.status, mip::MipStatus::kOptimal);
  ASSERT_TRUE(r.has_solution);
  const ValidationResult vr = validate_solution(inst, r.solution);
  EXPECT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors.front());
  // Exactly one of the node-0 pair can be accepted.
  EXPECT_EQ(static_cast<int>(r.solution.requests[0].accepted) +
                static_cast<int>(r.solution.requests[1].accepted),
            1);
  EXPECT_EQ(r.solution.num_accepted(), 3);
}

TEST(ModelAgreement, AllThreeModelsSameOptimum) {
  // A moderately contended scheduling instance; the three formulations
  // must agree on the optimal access-control objective.
  const auto inst = scheduling_instance(
      {{0.0, 3.0, 1.5}, {0.5, 4.0, 2.0}, {1.0, 6.0, 1.0}, {2.0, 7.0, 2.5}});
  double objectives[3];
  int i = 0;
  for (const ModelKind kind :
       {ModelKind::kDelta, ModelKind::kSigma, ModelKind::kCSigma}) {
    const TvnepSolveResult r = solve(inst, kind, default_params());
    ASSERT_EQ(r.status, mip::MipStatus::kOptimal) << to_string(kind);
    objectives[i++] = r.objective;
  }
  EXPECT_NEAR(objectives[0], objectives[1], 1e-5);
  EXPECT_NEAR(objectives[1], objectives[2], 1e-5);
}

TEST(ModelAgreement, CSigmaUsesFewerIntegerVariables) {
  const auto inst = scheduling_instance(
      {{0.0, 3.0, 1.5}, {0.5, 4.0, 2.0}, {1.0, 6.0, 1.0}});
  SolveParams p = default_params();
  p.build.dependency_cuts = false;  // compare raw model sizes
  const TvnepSolveResult sigma = solve(inst, ModelKind::kSigma, p);
  const TvnepSolveResult csigma = solve(inst, ModelKind::kCSigma, p);
  EXPECT_LT(csigma.model_integer_vars, sigma.model_integer_vars);
}

TEST(FreePlacement, SolverChoosesNodeMapping) {
  // No fixed mapping: two substrate nodes with capacity 1, two unit
  // requests pinned to the same interval — both fit via placement.
  net::SubstrateNetwork s;
  s.add_node(1.0);
  s.add_node(1.0);
  s.add_link(0, 1, 10.0);
  s.add_link(1, 0, 10.0);
  net::TvnepInstance inst(std::move(s), 2.0);
  for (int i = 0; i < 2; ++i) {
    net::VnetRequest r("r" + std::to_string(i));
    r.add_node(1.0);
    r.set_temporal(0.0, 1.0, 1.0);
    inst.add_request(r);  // placement free
  }
  const TvnepSolveResult r =
      solve(inst, ModelKind::kCSigma, default_params());
  ASSERT_EQ(r.status, mip::MipStatus::kOptimal);
  EXPECT_EQ(r.solution.num_accepted(), 2);
  const ValidationResult vr = validate_solution(inst, r.solution);
  EXPECT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors.front());
  // The two requests must land on different substrate nodes.
  EXPECT_NE(r.solution.requests[0].node_mapping[0],
            r.solution.requests[1].node_mapping[0]);
}

TEST(FreePlacement, VirtualLinkRoutedBetweenChosenHosts) {
  net::SubstrateNetwork s = net::make_grid(2, 2, 2.0, 2.0);
  net::TvnepInstance inst(std::move(s), 3.0);
  net::VnetRequest r("r0");
  r.add_node(1.0);
  r.add_node(1.0);
  r.add_link(0, 1, 1.0);
  r.set_temporal(0.0, 3.0, 2.0);
  inst.add_request(r);
  const TvnepSolveResult result =
      solve(inst, ModelKind::kCSigma, default_params());
  ASSERT_EQ(result.status, mip::MipStatus::kOptimal);
  ASSERT_EQ(result.solution.num_accepted(), 1);
  const ValidationResult vr = validate_solution(inst, result.solution);
  EXPECT_TRUE(vr.ok) << (vr.errors.empty() ? "" : vr.errors.front());
}

}  // namespace
}  // namespace tvnep::core
