// Branch-and-bound graceful degradation under injected LP faults: the
// requeue-once/drop accounting, the kNumericalLimit anytime status, and
// the presolve invariant with faults active end to end.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "mip/branch_and_bound.hpp"
#include "tvnep/solver.hpp"
#include "workload/generator.hpp"

namespace tvnep::mip {
namespace {

// Hook failing its first `k` consultations, then passing forever.
std::function<bool(long)> fail_first(int k) {
  auto calls = std::make_shared<long>(0);
  return [calls, k](long) { return (*calls)++ < static_cast<long>(k); };
}

// Hook failing one consultation out of every `period`.
std::function<bool(long)> fail_periodic(int period) {
  auto calls = std::make_shared<long>(0);
  return [calls, period](long) {
    return ((*calls)++ % static_cast<long>(period)) == 0;
  };
}

// The knapsack from mip_bnb_test: max 10a + 6b + 4c, 5a + 4b + 3c <= 10,
// binary; optimum a+b with objective 16.
Model make_knapsack() {
  Model m;
  const Var a = m.add_binary("a");
  const Var b = m.add_binary("b");
  const Var c = m.add_binary("c");
  m.add_constr(5.0 * a + 4.0 * b + 3.0 * c <= 10.0);
  m.set_objective(Sense::kMaximize, 10.0 * a + 6.0 * b + 4.0 * c);
  return m;
}

TEST(MipResilience, PeriodicSingleFaultsAreAbsorbedByTheLadder) {
  const Model m = make_knapsack();
  MipOptions options;
  options.lp.fault_hook = fail_periodic(5);
  MipSolver solver(options);
  const MipResult r = solver.solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 16.0, 1e-6);
  EXPECT_GT(r.lp_recoveries, 0);
  EXPECT_EQ(r.numerical_drops, 0);
}

TEST(MipResilience, BurstBeyondTheLadderIsSavedByTheRequeue) {
  // Six consecutive failures exhaust one full ladder run (initial attempt
  // plus four rungs) and spill one failure into the requeued visit, whose
  // own ladder then clears it.
  const Model m = make_knapsack();
  MipOptions options;
  options.lp.fault_hook = fail_first(6);
  MipSolver solver(options);
  const MipResult r = solver.solve(m);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 16.0, 1e-6);
  EXPECT_GE(r.lp_recoveries, 5);
  EXPECT_EQ(r.numerical_drops, 0);
}

TEST(MipResilience, PersistentFaultsKeepTheAnytimeIncumbent) {
  // Every LP fails forever; the caller-supplied incumbent must survive as
  // an anytime result instead of the whole solve aborting.
  const Model m = make_knapsack();
  MipOptions options;
  options.lp.fault_hook = [](long) { return true; };
  MipSolver solver(options);
  const MipResult r =
      solver.solve(m, std::vector<double>{1.0, 0.0, 0.0});  // a=1 → 10
  ASSERT_EQ(r.status, MipStatus::kNumericalLimit);
  ASSERT_TRUE(r.has_solution);
  EXPECT_NEAR(r.objective, 10.0, 1e-6);
  EXPECT_GE(r.numerical_drops, 1);
  // The dropped root leaves the bound uninformative but the gap is still
  // well defined (the paper's "∞" marker), never NaN.
  EXPECT_FALSE(std::isnan(r.gap()));
  EXPECT_GE(r.gap(), 0.0);
}

TEST(MipResilience, PersistentFaultsWithoutIncumbentReportFailure) {
  const Model m = make_knapsack();
  MipOptions options;
  options.lp.fault_hook = [](long) { return true; };
  MipSolver solver(options);
  const MipResult r = solver.solve(m);
  EXPECT_EQ(r.status, MipStatus::kNumericalFailure);
  EXPECT_FALSE(r.has_solution);
  EXPECT_GE(r.numerical_drops, 1);
}

TEST(MipResilience, GapGuardsNonFiniteBounds) {
  MipResult r;
  r.has_solution = true;
  r.objective = 10.0;
  r.best_bound = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isinf(r.gap()));
  EXPECT_FALSE(std::isnan(r.gap()));
}

// End-to-end: on generated TVNEP instances the faulted solve must agree
// with the clean solve, with and without presolve — recovery may change
// the path through the tree but never the answer.
TEST(MipResilience, FaultedTvnepSolvesMatchCleanOptimaWithAndWithoutPresolve) {
  for (const std::uint64_t seed : {1ull, 2ull}) {
    workload::WorkloadParams params;
    params.grid_rows = 2;
    params.grid_cols = 2;
    params.star_leaves = 2;
    params.num_requests = 3;
    params.seed = seed;
    const net::TvnepInstance instance =
        workload::generate_workload_with_flexibility(params, 1.0);

    core::SolveParams clean;
    clean.time_limit_seconds = 60.0;
    const auto reference =
        core::solve(instance, core::ModelKind::kCSigma, clean);
    ASSERT_EQ(reference.status, MipStatus::kOptimal) << "seed " << seed;

    for (const bool presolve : {true, false}) {
      core::SolveParams faulted = clean;
      faulted.mip.presolve = presolve;
      faulted.mip.lp.fault_hook = fail_periodic(50);
      const auto r = core::solve(instance, core::ModelKind::kCSigma, faulted);
      ASSERT_EQ(r.status, MipStatus::kOptimal)
          << "seed " << seed << " presolve=" << presolve;
      EXPECT_NEAR(r.objective, reference.objective, 1e-6)
          << "seed " << seed << " presolve=" << presolve;
      EXPECT_GT(r.lp_recoveries, 0)
          << "seed " << seed << " presolve=" << presolve;
    }
  }
}

}  // namespace
}  // namespace tvnep::mip
