// The kill-point matrix (DESIGN.md §16): crash the durability layer at
// every named fault point, at several occurrences of each, then recover
// from the state dir and resume the trace at the recovered decision
// index. The recovered run's decision stream — outcome, start, end, down
// to the last bit of every double — must equal the uninterrupted run's,
// and so must the final engine state. This is the end-to-end statement
// that a crash never forfeits admitted revenue and never double-admits:
// every acknowledged decision survives, every unacknowledged one is
// cleanly dropped.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "serve/admission.hpp"
#include "serve/wal.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace tvnep::serve {
namespace {

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/tvnep_rec_XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    EXPECT_NE(made, nullptr);
    path = made == nullptr ? "/tmp/tvnep_rec_fallback" : made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

workload::WorkloadParams matrix_params() {
  workload::WorkloadParams p;
  p.num_requests = 8;
  p.flexibility = 1.5;
  p.seed = 3;
  return p;
}

RequestMessage to_message(const workload::TraceRequest& tr, std::size_t i) {
  RequestMessage message;
  message.id = tr.request.name().empty() ? "R" + std::to_string(i)
                                         : tr.request.name();
  message.request = tr.request;
  message.mapping = tr.mapping;
  return message;
}

net::SubstrateNetwork paper_grid(const workload::WorkloadParams& p) {
  return net::make_grid(p.grid_rows, p.grid_cols, p.node_capacity,
                        p.link_capacity);
}

/// Byte-exact key of one decision: equality means the recovered engine
/// made the identical call, not merely a similar one.
std::string decision_key(const AdmitResult& r) {
  return std::to_string(static_cast<int>(r.outcome)) + "/" +
         wal_number(r.start) + "/" + wal_number(r.end) + "/" +
         std::to_string(r.component_size);
}

std::string encode_state(const AdmissionEngine::Snapshot& s) {
  std::string out = "v=" + std::to_string(s.version) +
                    ";now=" + wal_number(s.now) +
                    ";next_seq=" + std::to_string(s.next_seq) +
                    ";accepted=" + std::to_string(s.accepted_total) +
                    ";decisions=" + std::to_string(s.decisions) + "\n";
  for (const Commit& c : s.commits) out += "A" + encode_commit(c) + "\n";
  for (const Commit& c : s.retired) out += "R" + encode_commit(c) + "\n";
  return out;
}

struct Reference {
  std::vector<std::string> decisions;  // one key per trace request
  std::string final_state;
};

Reference run_uninterrupted(const workload::WorkloadParams& p,
                            const workload::ArrivalTrace& trace) {
  AdmissionEngine engine(paper_grid(p), {});
  Reference out;
  for (std::size_t i = 0; i < trace.requests.size(); ++i)
    out.decisions.push_back(
        decision_key(engine.admit(to_message(trace.requests[i], i))));
  out.final_state = encode_state(engine.snapshot_full());
  return out;
}

constexpr int kSnapshotEvery = 3;

/// Drives the trace from `begin` the way the daemon worker does: admit,
/// then publish a snapshot under the engine lock when the WAL asks.
void drive(AdmissionEngine* engine, Wal* wal,
           const workload::ArrivalTrace& trace, std::size_t begin,
           std::vector<std::string>* decisions) {
  for (std::size_t i = begin; i < trace.requests.size(); ++i) {
    const AdmitResult result = engine->admit(to_message(trace.requests[i], i));
    if (decisions != nullptr) decisions->push_back(decision_key(result));
    if (!wal->crashed() && wal->wants_snapshot())
      engine->with_snapshot_full(
          [&](const AdmissionEngine::Snapshot& s) { wal->write_snapshot(s); });
  }
}

/// One matrix cell: crash at occurrence `occurrence` of `point`, restart
/// from the state dir, resume at the recovered decision index, and demand
/// a byte-identical stream and final state.
void run_matrix_case(const workload::WorkloadParams& p,
                     const workload::ArrivalTrace& trace,
                     const Reference& reference, const char* point,
                     int occurrence) {
  SCOPED_TRACE(std::string(point) + " occurrence " +
               std::to_string(occurrence));
  TempDir dir;
  const net::SubstrateNetwork substrate = paper_grid(p);
  const AdmissionOptions admission;
  const std::uint64_t fp = serve_state_fingerprint(substrate, admission);

  WalOptions faulty;
  faulty.snapshot_every = kSnapshotEvery;
  int hits = 0;
  faulty.fault_hook = [&](const char* at) {
    if (std::strcmp(at, point) == 0 && ++hits == occurrence)
      return WalFault::kCrash;
    return WalFault::kNone;
  };

  // Phase 1: serve until the injected crash freezes the log. The engine
  // keeps going for the rest of the loop iteration (as a dying process
  // might), but nothing past the crash point reaches disk.
  {
    AdmissionEngine engine(substrate, admission);
    RecoveredState recovered;
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, faulty, &recovered);
    wal->attach(&engine);
    for (std::size_t i = 0;
         i < trace.requests.size() && !wal->crashed(); ++i) {
      engine.admit(to_message(trace.requests[i], i));
      if (!wal->crashed() && wal->wants_snapshot())
        engine.with_snapshot_full([&](const AdmissionEngine::Snapshot& s) {
          wal->write_snapshot(s);
        });
    }
    ASSERT_TRUE(wal->crashed());  // the dry run said this point fires
    engine.set_state_sink({});
  }

  // Phase 2: restart. Recovery must hand back a capacity-feasible state
  // and a resume index no further than the crash (never a decision the
  // log did not durably record).
  RecoveredState recovered;
  WalOptions clean;
  clean.snapshot_every = kSnapshotEvery;
  std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, clean, &recovered);
  const std::uint64_t resume = recovered.state.decisions;
  ASSERT_LE(resume, trace.requests.size());
  const core::ValidationResult check = validate_commit_state(
      substrate, recovered.state.commits, recovered.state.retired);
  EXPECT_TRUE(check.ok) << (check.errors.empty() ? "" : check.errors[0]);

  AdmissionEngine engine(substrate, admission);
  engine.restore(recovered.state);
  wal->attach(&engine);

  // Phase 3: resume. Every re-made decision must be byte-identical to the
  // uninterrupted run's, and so must the final state.
  std::vector<std::string> resumed;
  drive(&engine, wal.get(), trace, resume, &resumed);
  for (std::size_t i = 0; i < resumed.size(); ++i)
    EXPECT_EQ(resumed[i], reference.decisions[resume + i])
        << "request " << (resume + i);
  EXPECT_EQ(encode_state(engine.snapshot_full()), reference.final_state);
  engine.set_state_sink({});
}

TEST(ServeRecovery, KillPointMatrixRecoversByteIdentically) {
  const workload::WorkloadParams p = matrix_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const Reference reference = run_uninterrupted(p, trace);

  // Dry run: count how often each fault point actually fires on this
  // trace, so the matrix covers first/middle/last occurrences without
  // guessing.
  std::map<std::string, int> fired;
  {
    TempDir dir;
    const net::SubstrateNetwork substrate = paper_grid(p);
    const std::uint64_t fp = serve_state_fingerprint(substrate, {});
    WalOptions counting;
    counting.snapshot_every = kSnapshotEvery;
    counting.fault_hook = [&](const char* at) {
      ++fired[at];
      return WalFault::kNone;
    };
    AdmissionEngine engine(substrate, {});
    RecoveredState recovered;
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, counting, &recovered);
    wal->attach(&engine);
    drive(&engine, wal.get(), trace, 0, nullptr);
    engine.set_state_sink({});
  }
  ASSERT_GE(fired["append.before_write"],
            static_cast<int>(trace.requests.size()));
  ASSERT_GE(fired["snapshot.before_write"], 2);

  for (const char* point :
       {"append.before_write", "append.write", "append.after_write",
        "append.fsync", "append.after_fsync", "snapshot.before_write",
        "snapshot.after_write", "snapshot.after_compact"}) {
    const int count = fired[point];
    ASSERT_GT(count, 0) << point;
    std::vector<int> occurrences = {1};
    if (count >= 3) occurrences.push_back((count + 1) / 2);
    if (count >= 2) occurrences.push_back(count);
    for (const int occurrence : occurrences)
      run_matrix_case(p, trace, reference, point, occurrence);
  }
}

TEST(ServeRecovery, ShortWriteMatrixDropsOnlyTheTornDecision) {
  // The torn-tail variant of the matrix: crash mid-write at each record,
  // so recovery must also repair the log before resuming.
  const workload::WorkloadParams p = matrix_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const Reference reference = run_uninterrupted(p, trace);
  const net::SubstrateNetwork substrate = paper_grid(p);
  const std::uint64_t fp = serve_state_fingerprint(substrate, {});

  for (const int occurrence : {1, 4, 8}) {
    SCOPED_TRACE("short write at record " + std::to_string(occurrence));
    TempDir dir;
    WalOptions faulty;
    faulty.snapshot_every = 0;
    int hits = 0;
    faulty.fault_hook = [&](const char* at) {
      if (std::strcmp(at, "append.write") == 0 && ++hits == occurrence)
        return WalFault::kShortWrite;
      return WalFault::kNone;
    };
    {
      AdmissionEngine engine(substrate, {});
      RecoveredState recovered;
      std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, faulty, &recovered);
      wal->attach(&engine);
      for (std::size_t i = 0;
           i < trace.requests.size() && !wal->crashed(); ++i)
        engine.admit(to_message(trace.requests[i], i));
      ASSERT_TRUE(wal->crashed());
      engine.set_state_sink({});
    }
    RecoveredState recovered;
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, {}, &recovered);
    EXPECT_EQ(wal->stats().torn_repaired, 1);
    EXPECT_EQ(recovered.state.decisions,
              static_cast<std::uint64_t>(occurrence - 1));
    AdmissionEngine engine(substrate, {});
    engine.restore(recovered.state);
    wal->attach(&engine);
    std::vector<std::string> resumed;
    drive(&engine, wal.get(), trace, recovered.state.decisions, &resumed);
    for (std::size_t i = 0; i < resumed.size(); ++i)
      EXPECT_EQ(resumed[i],
                reference.decisions[recovered.state.decisions + i]);
    EXPECT_EQ(encode_state(engine.snapshot_full()), reference.final_state);
    engine.set_state_sink({});
  }
}

TEST(ServeRecovery, RecoversAcrossComponentRetirement) {
  // Sparse arrivals retire whole components mid-trace; the retirement
  // records must replay so the recovered GC state (and the retired
  // ledger the validator re-checks) matches the live engine's.
  workload::WorkloadParams p = matrix_params();
  p.num_requests = 12;
  p.interarrival_mean = 12.0;
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const Reference reference = run_uninterrupted(p, trace);
  const net::SubstrateNetwork substrate = paper_grid(p);
  const std::uint64_t fp = serve_state_fingerprint(substrate, {});
  TempDir dir;

  std::size_t live_retired = 0;
  {
    AdmissionEngine engine(substrate, {});
    RecoveredState recovered;
    WalOptions faulty;
    faulty.snapshot_every = kSnapshotEvery;
    int hits = 0;
    faulty.fault_hook = [&](const char* at) {
      if (std::strcmp(at, "append.after_fsync") == 0 && ++hits == 7)
        return WalFault::kCrash;
      return WalFault::kNone;
    };
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, faulty, &recovered);
    wal->attach(&engine);
    for (std::size_t i = 0;
         i < trace.requests.size() && !wal->crashed(); ++i) {
      engine.admit(to_message(trace.requests[i], i));
      if (!wal->crashed() && wal->wants_snapshot())
        engine.with_snapshot_full([&](const AdmissionEngine::Snapshot& s) {
          wal->write_snapshot(s);
        });
    }
    ASSERT_TRUE(wal->crashed());
    live_retired = engine.retired_commits();
    engine.set_state_sink({});
  }
  RecoveredState recovered;
  std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, {}, &recovered);
  // The crash fired after the 7th durable record, so all 7 decisions —
  // including any retirement they carried — recovered.
  EXPECT_EQ(recovered.state.decisions, 7u);
  EXPECT_GT(live_retired, 0u);
  EXPECT_EQ(recovered.state.retired.size(), live_retired);
  AdmissionEngine engine(substrate, {});
  engine.restore(recovered.state);
  wal->attach(&engine);
  std::vector<std::string> resumed;
  drive(&engine, wal.get(), trace, 7, &resumed);
  for (std::size_t i = 0; i < resumed.size(); ++i)
    EXPECT_EQ(resumed[i], reference.decisions[7 + i]) << "request " << (7 + i);
  EXPECT_EQ(encode_state(engine.snapshot_full()), reference.final_state);
  engine.set_state_sink({});
}

TEST(ServeRecovery, ReplaysReoptimizerInstallRecords) {
  // A version-checked install is a state transition like any other: it
  // must be logged and must replay, or recovery would resurrect the
  // pre-install schedules the reoptimizer already moved.
  const workload::WorkloadParams p = matrix_params();
  const workload::ArrivalTrace trace = workload::make_trace(p);
  const net::SubstrateNetwork substrate = paper_grid(p);
  const std::uint64_t fp = serve_state_fingerprint(substrate, {});
  TempDir dir;

  std::string live_state;
  {
    AdmissionEngine engine(substrate, {});
    RecoveredState recovered;
    WalOptions options;
    options.snapshot_every = 0;
    std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, options, &recovered);
    wal->attach(&engine);
    drive(&engine, wal.get(), trace, 0, nullptr);
    // Identity install: reschedule one not-yet-started commit onto its
    // current window (try_install refuses to move one that already
    // started) and re-assert every stored embedding — exercises both
    // record arrays.
    const AdmissionEngine::Snapshot snap = engine.snapshot();
    ASSERT_FALSE(snap.commits.empty());
    std::vector<AdmissionEngine::NewSchedule> reschedules;
    std::vector<AdmissionEngine::NewSchedule> embeddings;
    for (const Commit& c : snap.commits) {
      AdmissionEngine::NewSchedule schedule;
      schedule.seq = c.seq;
      schedule.start = c.start;
      schedule.end = c.end;
      schedule.embedding = c.embedding;
      if (reschedules.empty() && c.start > snap.now + 1e-6)
        reschedules.push_back(schedule);
      embeddings.push_back(std::move(schedule));
    }
    ASSERT_TRUE(engine.try_install(snap.version, reschedules, embeddings));
    live_state = encode_state(engine.snapshot_full());
    engine.set_state_sink({});
  }
  RecoveredState recovered;
  std::unique_ptr<Wal> wal = Wal::open(dir.path, fp, {}, &recovered);
  EXPECT_EQ(encode_state(recovered.state), live_state);
}

}  // namespace
}  // namespace tvnep::serve
