#include "linalg/sparse.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "support/check.hpp"

namespace tvnep::linalg {
namespace {

TEST(Sparse, BuildsColumnLayout) {
  SparseBuilder b(3, 2);
  b.add(0, 0, 1.0);
  b.add(2, 0, 2.0);
  b.add(1, 1, 3.0);
  const SparseMatrix m(b);
  EXPECT_EQ(m.nonzeros(), 3u);
  const auto col0 = m.column(0);
  ASSERT_EQ(col0.size(), 2u);
  EXPECT_EQ(col0[0].index, 0);
  EXPECT_DOUBLE_EQ(col0[0].value, 1.0);
  EXPECT_EQ(col0[1].index, 2);
  const auto col1 = m.column(1);
  ASSERT_EQ(col1.size(), 1u);
  EXPECT_EQ(col1[0].index, 1);
}

TEST(Sparse, RowLayoutMatchesColumns) {
  SparseBuilder b(2, 3);
  b.add(0, 0, 1.0);
  b.add(0, 2, 2.0);
  b.add(1, 1, 3.0);
  const SparseMatrix m(b);
  const auto row0 = m.row(0);
  ASSERT_EQ(row0.size(), 2u);
  EXPECT_EQ(row0[0].index, 0);
  EXPECT_EQ(row0[1].index, 2);
  EXPECT_DOUBLE_EQ(row0[1].value, 2.0);
  const auto row1 = m.row(1);
  ASSERT_EQ(row1.size(), 1u);
  EXPECT_EQ(row1[0].index, 1);
}

TEST(Sparse, DuplicatesAreSummed) {
  SparseBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.5);
  const SparseMatrix m(b);
  ASSERT_EQ(m.column(0).size(), 1u);
  EXPECT_DOUBLE_EQ(m.column(0)[0].value, 3.5);
}

TEST(Sparse, DuplicatesCancellingToZeroAreDropped) {
  SparseBuilder b(2, 2);
  b.add(0, 0, 1.0);
  b.add(0, 0, -1.0);
  const SparseMatrix m(b);
  EXPECT_EQ(m.nonzeros(), 0u);
  EXPECT_TRUE(m.column(0).empty());
}

TEST(Sparse, ExplicitZeroIsIgnored) {
  SparseBuilder b(1, 1);
  b.add(0, 0, 0.0);
  EXPECT_EQ(b.nonzeros(), 0u);
}

TEST(Sparse, AddColumnTo) {
  SparseBuilder b(3, 1);
  b.add(0, 0, 2.0);
  b.add(2, 0, -1.0);
  const SparseMatrix m(b);
  std::vector<double> y{1.0, 1.0, 1.0};
  m.add_column_to(0, 3.0, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0);
  EXPECT_DOUBLE_EQ(y[2], -2.0);
}

TEST(Sparse, ColumnDot) {
  SparseBuilder b(3, 1);
  b.add(0, 0, 2.0);
  b.add(1, 0, 3.0);
  const SparseMatrix m(b);
  const std::vector<double> x{1.0, 10.0, 100.0};
  EXPECT_DOUBLE_EQ(m.column_dot(0, x), 32.0);
}

TEST(Sparse, OutOfRangeIndicesRejected) {
  SparseBuilder b(2, 2);
  EXPECT_THROW(b.add(2, 0, 1.0), CheckError);
  EXPECT_THROW(b.add(0, -1, 1.0), CheckError);
}

TEST(Sparse, EmptyMatrix) {
  SparseBuilder b(0, 0);
  const SparseMatrix m(b);
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.nonzeros(), 0u);
}

}  // namespace
}  // namespace tvnep::linalg
