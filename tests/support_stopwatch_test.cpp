#include "support/stopwatch.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace tvnep {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(w.seconds(), 0.015);
  EXPECT_LT(w.seconds(), 5.0);
}

TEST(Stopwatch, ResetRestarts) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.reset();
  EXPECT_LT(w.seconds(), 0.015);
}

TEST(Deadline, UnlimitedNeverExpires) {
  const Deadline d(0.0);
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), 1e100);
}

TEST(Deadline, NegativeBudgetIsUnlimited) {
  EXPECT_TRUE(Deadline(-1.0).unlimited());
}

TEST(Deadline, ExpiresAfterBudget) {
  const Deadline d(0.01);
  EXPECT_FALSE(d.unlimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining(), 0.0);
}

TEST(Deadline, RemainingNeverNegative) {
  // Regression: remaining() used to go negative after expiry; forwarded to
  // an API where "<= 0" means unlimited, that leaked the whole time budget.
  const Deadline d(1e-6);
  while (!d.expired()) {
  }
  EXPECT_EQ(d.remaining(), 0.0);
}

TEST(Deadline, RemainingDecreases) {
  const Deadline d(10.0);
  const double first = d.remaining();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_LT(d.remaining(), first);
  EXPECT_GT(d.elapsed(), 0.0);
}

}  // namespace
}  // namespace tvnep
