#include "linalg/dense.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace tvnep::linalg {
namespace {

TEST(DenseMatrix, IdentityMultiplyIsIdentity) {
  const DenseMatrix eye = DenseMatrix::identity(3);
  const std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y(3);
  eye.multiply(x, y);
  EXPECT_EQ(y, x);
}

TEST(DenseMatrix, MultiplyRectangular) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const std::vector<double> x{1.0, 1.0, 1.0};
  std::vector<double> y(2);
  a.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
}

TEST(DenseMatrix, MultiplyTransposed) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y(3);
  a.multiply_transposed(x, y);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
  EXPECT_DOUBLE_EQ(y[2], 15.0);
}

TEST(DenseMatrix, RowSpanIsMutable) {
  DenseMatrix a(2, 2);
  auto row = a.row(1);
  row[0] = 7.0;
  EXPECT_DOUBLE_EQ(a(1, 0), 7.0);
}

TEST(DenseMatrix, Distance) {
  DenseMatrix a(1, 2), b(1, 2);
  a(0, 0) = 3.0;
  b(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(a.distance(b), 5.0);
}

TEST(VectorOps, Norms) {
  const std::vector<double> x{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
}

TEST(VectorOps, Dot) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
}

}  // namespace
}  // namespace tvnep::linalg
