// Ablation: value of the temporal dependency graph cuts (Section IV-C).
// Runs the cΣ-Model with and without Constraint (19) event-range presolve
// (which also drives the state-space reduction) and the pairwise cuts
// (20), comparing runtime and model size.
#include <iostream>

#include "fig_common.hpp"

using namespace tvnep;

int main(int argc, char** argv) {
  const eval::Args args(argc, argv);
  eval::SweepConfig config = eval::sweep_from_args(args, /*requests=*/4,
                                                   /*rows=*/2, /*cols=*/3,
                                                   /*leaves=*/2);
  bench::apply_quick_defaults(args, config, /*time_limit=*/8.0, /*seeds=*/2,
                              {0.0, 1.0, 2.0},
                              /*respect_paper_scale=*/false);
  // The per-variant copies below share this journal; the variant name in
  // each cell key keeps their records apart.
  bench::attach_resilience(args, config, "abl_depcuts");
  bench::announce_threads(config);

  struct Variant {
    const char* name;
    bool dependency_cuts;
    bool pairwise_cuts;
  };
  const Variant variants[] = {
      {"with-cuts", true, true},
      {"ranges-only", true, false},
      {"no-cuts", false, false},
  };

  for (const Variant& variant : variants) {
    std::cerr << "variant " << variant.name << "...\n";
    eval::SweepConfig cfg = config;
    cfg.cell_label = variant.name;
    cfg.build.dependency_cuts = variant.dependency_cuts;
    cfg.build.pairwise_cuts = variant.pairwise_cuts;
    const auto outcomes = eval::run_model_sweep(
        cfg, core::ModelKind::kCSigma, bench::progress_announcer(args));
    bench::save_outcomes_csv("abl_depcuts_cells.csv", variant.name, outcomes,
                             /*append=*/&variant != &variants[0]);
    const auto runtimes = eval::series_by_flexibility(
        cfg, outcomes,
        [](const eval::ScenarioOutcome& o) { return o.result.seconds; });
    bench::print_series(
        std::string("Ablation — cΣ runtime [s], ") + variant.name,
        cfg.flexibilities, runtimes, std::cout,
        std::string("abl_depcuts_") + variant.name + ".csv");
    const auto sizes = eval::series_by_flexibility(
        cfg, outcomes, [](const eval::ScenarioOutcome& o) {
          return static_cast<double>(o.result.model_constraints);
        });
    bench::print_series(
        std::string("Ablation — cΣ constraint count, ") + variant.name,
        cfg.flexibilities, sizes, std::cout, "");
  }
  return 0;
}
