// Load bench for the admission service: replays a generated arrival trace
// through the AdmissionEngine at 10x-1000x the paper's workload scale and
// reports per-request decision latency (p50/p90/p99 from the log-bucket
// histogram), throughput, acceptance and revenue — greedy-only versus
// greedy plus periodic exact re-optimization, so the reoptimizer's revenue
// win is measurable on the same trace.
//
//   serve_load [--scale K] [--mode greedy|reopt|both] [--csv out.csv]
//              [--seed N] [--flex F] [--slo-ms MS] [--shed-fraction F]
//              [--max-step N] [--reopt-every N] [--reopt-budget S]
//              [--emit-trace PATH]
//
// `--scale K` runs K * 20 requests (the paper's evaluation uses 20).
// Reoptimization runs synchronously every `--reopt-every` admissions so
// the bench is deterministic; the daemon runs the same passes on a wall
// clock interval thread instead.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "eval/args.hpp"
#include "fig_common.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/protocol.hpp"
#include "serve/reoptimizer.hpp"
#include "support/atomic_file.hpp"
#include "support/stopwatch.hpp"
#include "workload/trace.hpp"

using namespace tvnep;

namespace {

struct ModeResult {
  std::string mode;
  long requests = 0;
  long accepted = 0;
  long shed = 0;  // decided by the fastpath after the exact path bailed
  double revenue = 0.0;
  long reopt_passes = 0;
  long reopt_installs = 0;
  obs::HistogramSnapshot latency_ms;
  double total_seconds = 0.0;

  double req_per_s() const {
    return total_seconds > 0.0
               ? static_cast<double>(requests) / total_seconds
               : 0.0;
  }
};

ModeResult run_mode(const workload::ArrivalTrace& trace,
                    const workload::WorkloadParams& params,
                    const serve::AdmissionOptions& admission, bool with_reopt,
                    int reopt_every, const serve::ReoptOptions& reopt_options) {
  ModeResult result;
  result.mode = with_reopt ? "reopt" : "greedy";
  serve::AdmissionEngine engine(
      net::make_grid(params.grid_rows, params.grid_cols, params.node_capacity,
                     params.link_capacity),
      admission);
  serve::Reoptimizer reoptimizer(&engine, reopt_options);

  Stopwatch total;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    serve::RequestMessage message;
    message.id = "R" + std::to_string(i);
    message.request = trace.requests[i].request;
    message.mapping = trace.requests[i].mapping;

    Stopwatch per_request;
    serve::AdmitResult admit = engine.admit(message);
    // The daemon's shed ladder: an oversized component or a failed solve
    // falls back to the heuristic fastpath instead of dropping the request.
    if (admit.outcome == serve::AdmitOutcome::kComponentTooLarge ||
        admit.outcome == serve::AdmitOutcome::kSolverFailed) {
      ++result.shed;
      admit = engine.admit_fastpath(message);
    }
    result.latency_ms.observe(per_request.seconds() * 1000.0);
    ++result.requests;
    if (admit.outcome == serve::AdmitOutcome::kAccepted) ++result.accepted;

    if (with_reopt && reopt_every > 0 &&
        (i + 1) % static_cast<std::size_t>(reopt_every) == 0) {
      const serve::ReoptReport report = reoptimizer.reoptimize_once();
      if (report.attempted) ++result.reopt_passes;
      if (report.installed) ++result.reopt_installs;
    }
  }
  result.total_seconds = total.seconds();

  // Paper revenue (Section IV-E.1): every commit in the history is an
  // accepted request contributing d_R * sum of its node demands.
  for (const serve::Commit& c : engine.history())
    result.revenue += c.original.duration() * c.original.total_node_demand();
  return result;
}

void print_result(const ModeResult& r) {
  std::printf(
      "%-6s  requests=%-6ld accepted=%-6ld shed=%-5ld revenue=%-10.3f "
      "reopt=%ld/%ld  p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms  "
      "%.1f req/s (%.2fs total)\n",
      r.mode.c_str(), r.requests, r.accepted, r.shed, r.revenue,
      r.reopt_installs, r.reopt_passes, r.latency_ms.p50(),
      r.latency_ms.p90(), r.latency_ms.p99(), r.latency_ms.max,
      r.req_per_s(), r.total_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const eval::Args args(argc, argv);
  bench::init_observability(args);

  const int scale = args.get_int("scale", 10);
  const std::string mode = args.get_string("mode", "both");
  const double slo_ms = args.get_double("slo-ms", 100.0);
  const double shed_fraction = args.get_double("shed-fraction", 0.5);

  workload::WorkloadParams params;
  params.num_requests = scale * 20;
  params.flexibility = args.get_double("flex", 1.5);
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  params.grid_rows = args.get_int("rows", params.grid_rows);
  params.grid_cols = args.get_int("cols", params.grid_cols);

  const workload::ArrivalTrace trace = workload::make_trace(params);
  const std::string trace_out = args.get_string("emit-trace", "");
  if (!trace_out.empty()) workload::save_trace(trace, trace_out);

  serve::AdmissionOptions admission;
  admission.max_step_requests = args.get_int("max-step", 24);
  // The exact path gets the same per-step budget the daemon's shed ladder
  // would leave it before falling back to the fastpath.
  admission.greedy.per_iteration_time_limit =
      shed_fraction * slo_ms / 1000.0;

  serve::ReoptOptions reopt_options;
  reopt_options.time_limit_seconds = args.get_double("reopt-budget", 2.0);
  const int reopt_every = args.get_int("reopt-every", 4);

  std::printf("serve_load: scale=%dx (%d requests), seed=%llu, flex=%g, "
              "slo=%gms, max-step=%d\n",
              scale, params.num_requests,
              static_cast<unsigned long long>(params.seed),
              params.flexibility, slo_ms, admission.max_step_requests);

  std::vector<ModeResult> results;
  if (mode == "greedy" || mode == "both")
    results.push_back(run_mode(trace, params, admission, /*with_reopt=*/false,
                               reopt_every, reopt_options));
  if (mode == "reopt" || mode == "both")
    results.push_back(run_mode(trace, params, admission, /*with_reopt=*/true,
                               reopt_every, reopt_options));
  for (const ModeResult& r : results) print_result(r);

  if (results.size() == 2) {
    const double delta = results[1].revenue - results[0].revenue;
    std::printf("reopt revenue delta: %+.3f (%+.2f%%), accepted %+ld\n",
                delta,
                results[0].revenue > 0.0 ? 100.0 * delta / results[0].revenue
                                         : 0.0,
                results[1].accepted - results[0].accepted);
  }

  const std::string csv = args.get_string("csv", "");
  if (!csv.empty()) {
    AtomicFile out(csv);
    out.stream() << "scale,mode,requests,accepted,shed,revenue,reopt_passes,"
                    "reopt_installs,p50_ms,p90_ms,p99_ms,max_ms,req_per_s,"
                    "total_s\n";
    for (const ModeResult& r : results)
      out.stream() << scale << ',' << r.mode << ',' << r.requests << ','
                   << r.accepted << ',' << r.shed << ',' << r.revenue << ','
                   << r.reopt_passes << ',' << r.reopt_installs << ','
                   << r.latency_ms.p50() << ',' << r.latency_ms.p90() << ','
                   << r.latency_ms.p99() << ','
                   << (r.latency_ms.count > 0 ? r.latency_ms.max : 0.0) << ','
                   << r.req_per_s() << ',' << r.total_seconds << '\n';
    if (!out.commit()) {
      std::cerr << "serve_load: failed to write " << csv << "\n";
      return 1;
    }
  }
  return 0;
}
