// Load bench for the admission service: replays a generated arrival trace
// through the AdmissionEngine at 10x-1000x the paper's workload scale and
// reports per-request decision latency (p50/p90/p99 from the log-bucket
// histogram), throughput, acceptance and revenue — greedy-only versus
// greedy plus periodic exact re-optimization, so the reoptimizer's revenue
// win is measurable on the same trace.
//
//   serve_load [--scale K] [--mode greedy|reopt|both] [--csv out.csv]
//              [--seed N] [--flex F] [--slo-ms MS] [--shed-fraction F]
//              [--max-step N] [--reopt-every N] [--reopt-budget S]
//              [--arrival-rate R] [--metrics-port P]
//              [--slo-window S] [--slo-budget F]
//              [--emit-trace PATH]
//              [--state-dir DIR] [--wal-fsync off|batch|every] [--wal-ab]
//
// `--scale K` runs K * 20 requests (the paper's evaluation uses 20).
// Reoptimization runs synchronously every `--reopt-every` admissions so
// the bench is deterministic; the daemon runs the same passes on a wall
// clock interval thread instead.
//
// `--arrival-rate R` (virtual requests/second, 0 = as fast as possible)
// replays the trace through a simulated single-server queue on a virtual
// clock: request i arrives at i/R, waits for the server, and walks the
// daemon's shed ladder on its *virtual* queue age — overload reject past
// the SLO, fastpath past shed_fraction·SLO — with measured wall-clock
// admit times as the service times. That makes queue depth, per-rung shed
// counts and the SLO error budget measurable without wall-clock sleeps.
//
// `--metrics-port P` starts the same loopback /metrics listener the
// daemon uses; the bench records admission latency, rung counters and the
// SLO budget gauges into the live registry, so a 1 Hz scraper watches the
// run as it happens.
//
// `--state-dir DIR` turns the durability layer on: every decision is
// write-ahead-logged (DESIGN.md §16) before it counts, with the fsync
// cadence from `--wal-fsync` (default batch). `--wal-ab` instead runs
// each selected mode three times — WAL off, batch, every — on the same
// trace and reports the p99 cost of each durability level side by side
// (the acceptance bar: batch within 15% of off under the 100 ms SLO).
#include <algorithm>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "eval/args.hpp"
#include "fig_common.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/metrics_server.hpp"
#include "serve/protocol.hpp"
#include "serve/reoptimizer.hpp"
#include "serve/slo.hpp"
#include "serve/wal.hpp"
#include "support/atomic_file.hpp"
#include "support/stopwatch.hpp"
#include "workload/trace.hpp"

using namespace tvnep;

namespace {

struct LoadOptions {
  double slo_ms = 100.0;
  double shed_fraction = 0.5;
  double arrival_rate = 0.0;  // virtual req/s; 0 = no queue simulation
  serve::SloOptions slo;
  /// WAL A/B axis: "off" disables the durability layer; "batch"/"every"
  /// write-ahead-log each decision into `state_root/<mode>-<wal>` with
  /// the corresponding fsync cadence.
  std::string wal = "off";
  std::string state_root;
};

struct ModeResult {
  std::string mode;
  long requests = 0;
  long accepted = 0;
  long shed = 0;          // solver rung: exact path bailed, fastpath decided
  long shed_aged = 0;     // age rung: queued past shed_fraction·SLO
  long reject_overload = 0;  // queued past the whole SLO: reject, no work
  double revenue = 0.0;
  long reopt_passes = 0;
  long reopt_installs = 0;
  long reopt_stale = 0;
  long max_queue_depth = 0;
  double mean_queue_depth = 0.0;
  double slo_budget_remaining = 1.0;
  std::string wal = "off";
  long wal_appends = 0;
  long wal_fsyncs = 0;
  long wal_snapshots = 0;
  obs::HistogramSnapshot latency_ms;
  double total_seconds = 0.0;

  double req_per_s() const {
    return total_seconds > 0.0
               ? static_cast<double>(requests) / total_seconds
               : 0.0;
  }
};

ModeResult run_mode(const workload::ArrivalTrace& trace,
                    const workload::WorkloadParams& params,
                    const serve::AdmissionOptions& admission, bool with_reopt,
                    int reopt_every, const serve::ReoptOptions& reopt_options,
                    const LoadOptions& load) {
  ModeResult result;
  result.mode = with_reopt ? "reopt" : "greedy";
  result.wal = load.wal;
  const net::SubstrateNetwork substrate =
      net::make_grid(params.grid_rows, params.grid_cols, params.node_capacity,
                     params.link_capacity);
  serve::AdmissionEngine engine(substrate, admission);
  serve::Reoptimizer reoptimizer(&engine, reopt_options);
  serve::SloBudget slo(load.slo);

  // Durability layer under test: each run gets a fresh directory so the
  // A/B rows measure logging cost, never recovery cost.
  std::unique_ptr<serve::Wal> wal;
  if (load.wal != "off") {
    const std::string wal_dir =
        load.state_root + "/" + result.mode + "-" + load.wal;
    std::error_code ec;
    std::filesystem::remove_all(wal_dir, ec);
    serve::WalOptions wal_options;
    wal_options.fsync = load.wal == "batch"
                            ? serve::WalOptions::Fsync::kBatch
                            : serve::WalOptions::Fsync::kEvery;
    serve::RecoveredState recovered;
    wal = serve::Wal::open(wal_dir,
                           serve::serve_state_fingerprint(substrate, admission),
                           wal_options, &recovered);
    wal->attach(&engine);
  }

  const bool paced = load.arrival_rate > 0.0;
  double server_free = 0.0;       // virtual clock: when the server frees up
  std::deque<double> in_flight;   // virtual finish times of undecided work
  long depth_sum = 0;

  Stopwatch total;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    serve::RequestMessage message;
    message.id = "R" + std::to_string(i);
    message.request = trace.requests[i].request;
    message.mapping = trace.requests[i].mapping;

    // Virtual queue state at this arrival (zero when unpaced).
    const double arrival =
        paced ? static_cast<double>(i) / load.arrival_rate : 0.0;
    while (!in_flight.empty() && in_flight.front() <= arrival)
      in_flight.pop_front();
    const long depth = static_cast<long>(in_flight.size());
    result.max_queue_depth = std::max(result.max_queue_depth, depth);
    depth_sum += depth;
    obs::gauge_set("serve.queue.depth", static_cast<double>(depth));
    const double start_service = paced ? std::max(arrival, server_free) : 0.0;
    const double wait_ms = (start_service - arrival) * 1000.0;

    Stopwatch per_request;
    bool accepted = false;
    if (paced && wait_ms > load.slo_ms) {
      // Overload rung: the SLO is already blown before any work starts.
      ++result.reject_overload;
      obs::counter_add("serve.shed.overload");
    } else {
      serve::AdmitResult admit;
      if (paced && wait_ms > load.shed_fraction * load.slo_ms) {
        // Age rung: not enough headroom left for the exact path.
        ++result.shed_aged;
        obs::counter_add("serve.shed.aged");
        admit = engine.admit_fastpath(message);
      } else {
        admit = engine.admit(message);
        // Solver rung: an oversized component or a failed solve falls back
        // to the heuristic fastpath instead of dropping the request.
        if (admit.outcome == serve::AdmitOutcome::kComponentTooLarge ||
            admit.outcome == serve::AdmitOutcome::kSolverFailed) {
          ++result.shed;
          obs::counter_add("serve.shed.solver");
          admit = engine.admit_fastpath(message);
        }
      }
      accepted = admit.outcome == serve::AdmitOutcome::kAccepted;
    }
    const double service_s = per_request.seconds();
    const double latency_ms = wait_ms + service_s * 1000.0;
    if (paced) {
      server_free = start_service + service_s;
      in_flight.push_back(server_free);
    }
    // Snapshot cadence between requests, exactly like the daemon worker —
    // the append (inside admit, via the state sink) is in the measured
    // service time; the compaction is not on any request's critical path.
    if (wal != nullptr && !wal->crashed() && wal->wants_snapshot())
      engine.with_snapshot_full(
          [&](const serve::AdmissionEngine::Snapshot& s) {
            wal->write_snapshot(s);
          });

    result.latency_ms.observe(latency_ms);
    obs::histogram_observe("serve.admit.latency_ms", latency_ms);
    ++result.requests;
    if (accepted) {
      ++result.accepted;
      obs::counter_add("serve.admit.accept");
    } else {
      obs::counter_add("serve.admit.reject");
    }
    slo.record(paced ? arrival : total.seconds(), latency_ms > load.slo_ms);
    const serve::SloBudget::Reading reading =
        slo.read(paced ? arrival : total.seconds());
    obs::gauge_set("serve.slo.budget_remaining", reading.budget_remaining);
    obs::gauge_set("serve.slo.burn_rate", reading.burn_rate);
    result.slo_budget_remaining = reading.budget_remaining;

    if (with_reopt && reopt_every > 0 &&
        (i + 1) % static_cast<std::size_t>(reopt_every) == 0) {
      const serve::ReoptReport report = reoptimizer.reoptimize_once();
      if (report.attempted) ++result.reopt_passes;
      if (report.installed) ++result.reopt_installs;
      if (report.stale) ++result.reopt_stale;
    }
  }
  result.total_seconds = total.seconds();
  if (result.requests > 0)
    result.mean_queue_depth =
        static_cast<double>(depth_sum) / static_cast<double>(result.requests);

  if (wal != nullptr) {
    const serve::WalStats stats = wal->stats();
    result.wal_appends = stats.appends;
    result.wal_fsyncs = stats.fsyncs;
    result.wal_snapshots = stats.snapshots;
    engine.set_state_sink({});
  }

  // Paper revenue (Section IV-E.1): every commit in the history is an
  // accepted request contributing d_R * sum of its node demands.
  for (const serve::Commit& c : engine.history())
    result.revenue += c.original.duration() * c.original.total_node_demand();
  return result;
}

void print_result(const ModeResult& r) {
  std::printf(
      "%-6s wal=%-5s requests=%-6ld accepted=%-6ld shed=%-5ld aged=%-4ld "
      "overload=%-4ld revenue=%-10.3f reopt=%ld/%ld stale=%ld  "
      "p50=%.2fms p90=%.2fms p99=%.2fms max=%.2fms  qmax=%ld qmean=%.2f "
      "budget=%.2f  wal=%ld/%ld/%ld  %.1f req/s (%.2fs total)\n",
      r.mode.c_str(), r.wal.c_str(), r.requests, r.accepted, r.shed,
      r.shed_aged, r.reject_overload, r.revenue, r.reopt_installs,
      r.reopt_passes, r.reopt_stale, r.latency_ms.p50(), r.latency_ms.p90(),
      r.latency_ms.p99(), r.latency_ms.count > 0 ? r.latency_ms.max : 0.0,
      r.max_queue_depth, r.mean_queue_depth, r.slo_budget_remaining,
      r.wal_appends, r.wal_fsyncs, r.wal_snapshots, r.req_per_s(),
      r.total_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const eval::Args args(argc, argv);
  bench::init_observability(args);

  const int scale = args.get_int("scale", 10);
  const std::string mode = args.get_string("mode", "both");
  const double slo_ms = args.get_double("slo-ms", 100.0);
  const double shed_fraction = args.get_double("shed-fraction", 0.5);

  workload::WorkloadParams params;
  params.num_requests = scale * 20;
  params.flexibility = args.get_double("flex", 1.5);
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  params.grid_rows = args.get_int("rows", params.grid_rows);
  params.grid_cols = args.get_int("cols", params.grid_cols);

  const workload::ArrivalTrace trace = workload::make_trace(params);
  const std::string trace_out = args.get_string("emit-trace", "");
  if (!trace_out.empty()) workload::save_trace(trace, trace_out);

  serve::AdmissionOptions admission;
  admission.max_step_requests = args.get_int("max-step", 24);
  // The exact path gets the same per-step budget the daemon's shed ladder
  // would leave it before falling back to the fastpath.
  admission.greedy.per_iteration_time_limit =
      shed_fraction * slo_ms / 1000.0;

  serve::ReoptOptions reopt_options;
  reopt_options.time_limit_seconds = args.get_double("reopt-budget", 2.0);
  const int reopt_every = args.get_int("reopt-every", 4);

  LoadOptions load;
  load.slo_ms = slo_ms;
  load.shed_fraction = shed_fraction;
  load.arrival_rate = args.get_double("arrival-rate", 0.0);
  load.slo.window_seconds = args.get_double("slo-window", 60.0);
  load.slo.budget_fraction = args.get_double("slo-budget", 0.05);

  serve::MetricsServer metrics_server({{{"service", "serve_load"}}, {}});
  if (args.has("metrics-port")) {
    const int metrics_port =
        metrics_server.start(args.get_int("metrics-port", 0));
    if (metrics_port < 0) {
      std::cerr << "serve_load: cannot bind metrics port\n";
      return 1;
    }
    std::printf("serve_load: /metrics on 127.0.0.1:%d\n", metrics_port);
  }

  std::printf("serve_load: scale=%dx (%d requests), seed=%llu, flex=%g, "
              "slo=%gms, max-step=%d, arrival-rate=%g\n",
              scale, params.num_requests,
              static_cast<unsigned long long>(params.seed),
              params.flexibility, slo_ms, admission.max_step_requests,
              load.arrival_rate);

  // WAL A/B axis: --wal-ab runs each mode at off/batch/every; otherwise a
  // single durability level from --state-dir / --wal-fsync (default off).
  const std::string wal_fsync = args.get_string("wal-fsync", "batch");
  if (wal_fsync != "off" && wal_fsync != "batch" && wal_fsync != "every") {
    std::cerr << "serve_load: --wal-fsync must be off, batch, or every\n";
    return 1;
  }
  load.state_root = args.get_string("state-dir", "");
  std::vector<std::string> wal_levels;
  if (args.has("wal-ab"))
    wal_levels = {"off", "batch", "every"};
  else if (!load.state_root.empty())
    wal_levels = {wal_fsync};
  else
    wal_levels = {"off"};
  if (load.state_root.empty()) load.state_root = "serve_load_state";

  std::vector<ModeResult> results;
  for (const std::string& wal_level : wal_levels) {
    load.wal = wal_level;
    if (mode == "greedy" || mode == "both")
      results.push_back(run_mode(trace, params, admission,
                                 /*with_reopt=*/false, reopt_every,
                                 reopt_options, load));
    if (mode == "reopt" || mode == "both")
      results.push_back(run_mode(trace, params, admission,
                                 /*with_reopt=*/true, reopt_every,
                                 reopt_options, load));
  }
  for (const ModeResult& r : results) print_result(r);
  metrics_server.stop();

  // Same-mode revenue deltas only make sense within one durability level.
  if (results.size() == 2 && wal_levels.size() == 1) {
    const double delta = results[1].revenue - results[0].revenue;
    std::printf("reopt revenue delta: %+.3f (%+.2f%%), accepted %+ld\n",
                delta,
                results[0].revenue > 0.0 ? 100.0 * delta / results[0].revenue
                                         : 0.0,
                results[1].accepted - results[0].accepted);
  }

  // A/B summary: the durability tax on tail latency, per engine mode.
  if (wal_levels.size() > 1) {
    for (const std::string& m : {std::string("greedy"), std::string("reopt")}) {
      const ModeResult* off = nullptr;
      for (const ModeResult& r : results)
        if (r.mode == m && r.wal == "off") off = &r;
      if (off == nullptr) continue;
      for (const ModeResult& r : results) {
        if (r.mode != m || r.wal == "off") continue;
        const double base = off->latency_ms.p99();
        std::printf("wal p99 %-6s %-5s: %.2fms vs %.2fms off (%+.1f%%)\n",
                    m.c_str(), r.wal.c_str(), r.latency_ms.p99(), base,
                    base > 0.0 ? 100.0 * (r.latency_ms.p99() - base) / base
                               : 0.0);
      }
    }
  }

  const std::string csv = args.get_string("csv", "");
  if (!csv.empty()) {
    AtomicFile out(csv);
    out.stream() << "scale,mode,wal,requests,accepted,shed,shed_aged,"
                    "reject_overload,revenue,reopt_passes,reopt_installs,"
                    "reopt_stale,p50_ms,p90_ms,p99_ms,max_ms,"
                    "max_queue_depth,mean_queue_depth,slo_budget_remaining,"
                    "wal_appends,wal_fsyncs,wal_snapshots,"
                    "req_per_s,total_s\n";
    for (const ModeResult& r : results)
      out.stream() << scale << ',' << r.mode << ',' << r.wal << ','
                   << r.requests << ','
                   << r.accepted << ',' << r.shed << ',' << r.shed_aged << ','
                   << r.reject_overload << ',' << r.revenue << ','
                   << r.reopt_passes << ',' << r.reopt_installs << ','
                   << r.reopt_stale << ','
                   << r.latency_ms.p50() << ',' << r.latency_ms.p90() << ','
                   << r.latency_ms.p99() << ','
                   << (r.latency_ms.count > 0 ? r.latency_ms.max : 0.0) << ','
                   << r.max_queue_depth << ',' << r.mean_queue_depth << ','
                   << r.slo_budget_remaining << ','
                   << r.wal_appends << ',' << r.wal_fsyncs << ','
                   << r.wal_snapshots << ','
                   << r.req_per_s() << ',' << r.total_seconds << '\n';
    if (!out.commit()) {
      std::cerr << "serve_load: failed to write " << csv << "\n";
      return 1;
    }
  }
  return 0;
}
