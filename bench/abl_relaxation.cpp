// Ablation: LP-relaxation strength of the three formulations (the Section
// III-C argument for the Σ-Model). Solves only the root relaxation of each
// model and reports the root bound relative to the best known integral
// objective — the Δ-Model's bound is far looser, which is exactly why its
// branch-and-bound trees explode.
#include <cmath>
#include <iostream>
#include <limits>

#include "fig_common.hpp"
#include "obs/metrics.hpp"

using namespace tvnep;

int main(int argc, char** argv) {
  const eval::Args args(argc, argv);
  eval::SweepConfig config = eval::sweep_from_args(args, /*requests=*/4,
                                                   /*rows=*/2, /*cols=*/3,
                                                   /*leaves=*/2);
  bench::apply_quick_defaults(args, config, /*time_limit=*/30.0, /*seeds=*/3,
                              {0.0, 1.0, 2.0, 3.0},
                              /*respect_paper_scale=*/false);
  bench::attach_resilience(args, config, "abl_relaxation");
  bench::announce_threads(config);

  const double kSkipped = std::numeric_limits<double>::quiet_NaN();

  for (const core::ModelKind kind :
       {core::ModelKind::kDelta, core::ModelKind::kSigma,
        core::ModelKind::kCSigma}) {
    // Per-cell slots (NaN = no usable reference optimum); compacted in
    // deterministic grid order below.
    std::vector<std::vector<double>> cell_ratios(
        config.flexibilities.size(),
        std::vector<double>(static_cast<std::size_t>(config.seeds), kSkipped));
    eval::for_each_cell(config, [&](std::size_t f, int seed, std::size_t) {
      // Journal-backed resume (bespoke cells get checkpointing but not the
      // watchdog/retry ladder of the run_*_sweep harnesses). NaN ratios
      // (no usable reference) round-trip via the journal's nan sentinel.
      const eval::CellKey key{core::to_string(kind), static_cast<int>(f),
                              seed};
      if (config.journal) {
        if (const eval::CellRecord* rec = config.journal->find(key)) {
          cell_ratios[f][static_cast<std::size_t>(seed)] =
              rec->number("ratio", kSkipped);
          obs::counter_add("sweep.resumed_cells");
          return;
        }
      }
      workload::WorkloadParams params = config.base;
      params.seed = static_cast<std::uint64_t>(seed) + 1;
      const net::TvnepInstance instance =
          workload::generate_workload_with_flexibility(
              params, config.flexibilities[f]);

      // Root relaxation bound of this model.
      core::SolveParams root;
      root.build = config.build;
      root.max_nodes = 1;
      root.time_limit_seconds = config.time_limit;
      root.mip.presolve = config.presolve;
      const auto root_result = core::solve(instance, kind, root);

      // Reference integral optimum from the strongest model.
      core::SolveParams full;
      full.build = config.build;
      full.time_limit_seconds = config.time_limit;
      full.mip.presolve = config.presolve;
      const auto reference =
          core::solve(instance, core::ModelKind::kCSigma, full);

      double ratio = kSkipped;
      if (reference.has_solution && reference.objective > 1e-9) {
        ratio = root_result.best_bound / reference.objective;
        cell_ratios[f][static_cast<std::size_t>(seed)] = ratio;
      }
      if (config.journal) {
        eval::CellRecord rec;
        rec.key = key;
        rec.fields["kind"] = eval::JournalValue("abl_relaxation");
        rec.fields["ratio"] = eval::JournalValue(ratio);
        config.journal->append(rec);
      }
    });
    std::vector<std::vector<double>> ratios(config.flexibilities.size());
    for (std::size_t f = 0; f < config.flexibilities.size(); ++f)
      for (const double v : cell_ratios[f])
        if (!std::isnan(v)) ratios[f].push_back(v);
    bench::print_series(
        std::string("Relaxation strength — root bound / integral optimum, ") +
            core::to_string(kind) + " (1.0 = tight)",
        config.flexibilities, ratios, std::cout,
        std::string("abl_relaxation_") + core::to_string(kind) + ".csv");
  }
  return 0;
}
