// Figure 9: relative improvement of the access-control objective compared
// with the objective at flexibility 0, per workload:
//     100 · (obj(flex) - obj(0)) / obj(0)  [%]
//
// Expected shape: near-linear growth — already little time flexibility
// improves overall system performance significantly (the paper's headline
// takeaway).
#include <iostream>

#include "fig_common.hpp"

using namespace tvnep;

int main(int argc, char** argv) {
  const eval::Args args(argc, argv);
  eval::SweepConfig config = eval::sweep_from_args(args, /*requests=*/5,
                                                   /*rows=*/2, /*cols=*/3,
                                                   /*leaves=*/2);
  bench::apply_quick_defaults(args, config, /*time_limit=*/10.0, /*seeds=*/3,
                              {0.0, 1.0, 2.0, 3.0});
  bench::attach_resilience(args, config, "fig9");
  bench::announce_threads(config);

  const auto outcomes = eval::run_model_sweep(config, core::ModelKind::kCSigma,
                                              bench::progress_announcer(args));
  bench::save_outcomes_csv("fig9_cells.csv",
                           core::to_string(core::ModelKind::kCSigma), outcomes);

  // Baseline objective per seed at flexibility 0.
  std::vector<double> baseline(static_cast<std::size_t>(config.seeds), 0.0);
  for (const auto& o : outcomes)
    if (o.flexibility == 0.0 && o.result.has_solution)
      baseline[static_cast<std::size_t>(o.seed)] = o.result.objective;

  std::vector<std::vector<double>> improvement(config.flexibilities.size());
  for (const auto& o : outcomes) {
    const double base = baseline[static_cast<std::size_t>(o.seed)];
    if (base <= 1e-9 || !o.result.has_solution) continue;
    for (std::size_t f = 0; f < config.flexibilities.size(); ++f)
      if (config.flexibilities[f] == o.flexibility)
        improvement[f].push_back(100.0 * (o.result.objective - base) / base);
  }
  bench::print_series(
      "Fig 9 — access-control objective improvement over flexibility 0 [%]",
      config.flexibilities, improvement, std::cout,
      "fig9_flexibility_improvement.csv");
  return 0;
}
