// Micro-benchmarks of the substrate: simplex solves, warm restarts, MIP
// knapsacks, dependency-graph construction and model building.
#include <benchmark/benchmark.h>

#include <map>

#include "lp/simplex.hpp"
#include "mip/branch_and_bound.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "presolve/presolve.hpp"
#include "support/rng.hpp"
#include "tvnep/dependency.hpp"
#include "tvnep/solver.hpp"
#include "workload/generator.hpp"

namespace tvnep {
namespace {

lp::Problem random_lp(int n, int m, std::uint64_t seed) {
  Rng rng(seed);
  lp::Problem p;
  for (int j = 0; j < n; ++j)
    p.add_column(0.0, static_cast<double>(rng.uniform_int(1, 5)),
                 static_cast<double>(rng.uniform_int(-5, 5)));
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    for (int j = 0; j < n; ++j)
      if (rng.uniform01() < 0.3)
        coeffs.emplace_back(j, static_cast<double>(rng.uniform_int(-3, 3)));
    p.add_row(-lp::kInfinity, static_cast<double>(rng.uniform_int(1, 10)),
              coeffs);
  }
  p.finalize();
  return p;
}

void BM_SimplexColdSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lp::Problem p = random_lp(n, n / 2, 42);
  for (auto _ : state) {
    lp::Simplex s(p);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SimplexColdSolve)->Arg(50)->Arg(100)->Arg(200);

void BM_SimplexWarmRestart(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lp::Problem p = random_lp(n, n / 2, 42);
  lp::Simplex s(p);
  s.solve();
  bool tighten = true;
  for (auto _ : state) {
    s.set_bounds(0, 0.0, tighten ? 0.0 : p.column(0).upper);
    tighten = !tighten;
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SimplexWarmRestart)->Arg(50)->Arg(100)->Arg(200);

// A sparse random LP: every row keeps `row_nnz` nonzeros regardless of
// problem size, so basis density is size-independent — the regime where
// the sparse-LU backend's per-iteration cost should stay sub-quadratic
// while the dense explicit inverse pays O(m^2) per pivot.
lp::Problem random_sparse_lp(int n, int m, int row_nnz, std::uint64_t seed) {
  Rng rng(seed);
  lp::Problem p;
  for (int j = 0; j < n; ++j)
    p.add_column(0.0, static_cast<double>(rng.uniform_int(1, 5)),
                 static_cast<double>(rng.uniform_int(-5, 5)));
  for (int i = 0; i < m; ++i) {
    std::map<int, double> coeffs;
    while (static_cast<int>(coeffs.size()) < row_nnz)
      coeffs[rng.uniform_int(0, n - 1)] =
          static_cast<double>(rng.uniform_int(1, 3));
    p.add_row(-lp::kInfinity, static_cast<double>(rng.uniform_int(5, 15)),
              {coeffs.begin(), coeffs.end()});
  }
  p.finalize();
  return p;
}

// The basis-backend scaling pair (ISSUE acceptance: on sparse LPs the
// sparse-LU backend's per-iteration cost grows sub-quadratically in m, the
// dense explicit inverse at least quadratically). The "iters" counter is a
// rate — simplex iterations per second — whose inverse is the
// per-iteration cost the pair compares across the m axis; "fill" is the
// worst nnz(factors)/nnz(B) the backend reported.
void BM_SimplexBasisBackend(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const lp::Problem p = random_sparse_lp(m, m, 8, 42);
  lp::SimplexOptions options;
  options.basis = state.range(1) != 0 ? lp::BasisBackend::kSparseLu
                                      : lp::BasisBackend::kDenseInverse;
  long iters = 0;
  double fill = 0.0;
  for (auto _ : state) {
    lp::Simplex s(p, options);
    benchmark::DoNotOptimize(s.solve());
    iters += s.stats().phase1_iterations + s.stats().phase2_iterations;
    fill = s.stats().basis_fill_max;
  }
  state.counters["iters"] = benchmark::Counter(static_cast<double>(iters),
                                               benchmark::Counter::kIsRate);
  state.counters["fill"] = fill;
}
BENCHMARK(BM_SimplexBasisBackend)
    ->ArgNames({"m", "sparse"})
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({400, 0})
    ->Args({400, 1})
    ->Unit(benchmark::kMillisecond);

// The fixed-column pricing pair (bugfix: Dantzig pricing used to rescan
// fixed lb == ub columns on every pass). 90% of the columns are fixed at
// zero — the shape presolve's variable fixing hands the node LPs. Arg 0 is
// the default candidate-list pricing that drops fixed columns once per
// solve attempt; arg 1 re-enables the historical scan-everything behavior
// via SimplexOptions::price_fixed_columns.
void BM_SimplexFixedColumnPricing(benchmark::State& state) {
  const int n = 500;
  Rng rng(11);
  lp::Problem p;
  for (int j = 0; j < n; ++j) {
    const double upper = j % 10 == 0 ? 5.0 : 0.0;  // 90% fixed at 0
    p.add_column(0.0, upper, static_cast<double>(rng.uniform_int(-5, 5)));
  }
  for (int i = 0; i < n / 2; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    for (int j = 0; j < n; ++j)
      if (rng.uniform01() < 0.3)
        coeffs.emplace_back(j, static_cast<double>(rng.uniform_int(-3, 3)));
    p.add_row(-lp::kInfinity, static_cast<double>(rng.uniform_int(1, 10)),
              coeffs);
  }
  p.finalize();
  lp::SimplexOptions options;
  // Full-scan Dantzig so both arms walk the identical pivot sequence (the
  // partial-pricing window scales with the candidate count and would
  // otherwise change the path); the delta is the pure scan overhead.
  options.pricing = lp::PricingRule::kDantzig;
  options.price_fixed_columns = state.range(0) != 0;
  for (auto _ : state) {
    lp::Simplex s(p, options);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SimplexFixedColumnPricing)
    ->ArgNames({"price_fixed"})
    ->Arg(0)
    ->Arg(1);

void BM_MipKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  mip::Model m;
  mip::LinExpr weight, value;
  for (int i = 0; i < n; ++i) {
    const mip::Var x = m.add_binary();
    weight += static_cast<double>(rng.uniform_int(1, 20)) * x;
    value += static_cast<double>(rng.uniform_int(1, 30)) * x;
  }
  m.add_constr(weight <= 5.0 * n);
  m.set_objective(mip::Sense::kMaximize, value);
  for (auto _ : state) {
    mip::MipSolver solver;
    benchmark::DoNotOptimize(solver.solve(m));
  }
}
BENCHMARK(BM_MipKnapsack)->Arg(10)->Arg(20)->Arg(30);

// The presolve ablation pair: the full cΣ solve on a small grid workload
// with presolve on (Args {requests, 1}) vs off (Args {requests, 0}).
// Counters expose the B&B node count and the presolve reductions so the
// two variants can be compared side by side in one report.
void BM_CSigmaSolve(benchmark::State& state) {
  workload::WorkloadParams params;
  params.grid_rows = 2;
  params.grid_cols = 2;
  params.star_leaves = 2;
  params.num_requests = static_cast<int>(state.range(0));
  params.seed = 1;
  params.flexibility = 1.0;
  const net::TvnepInstance instance = workload::generate_workload(params);
  const auto formulation =
      core::build_formulation(instance, core::ModelKind::kCSigma, {});

  mip::MipOptions options;
  options.presolve = state.range(1) != 0;
  long nodes = 0, rows_removed = 0, cols_removed = 0;
  for (auto _ : state) {
    mip::MipSolver solver(options);
    const mip::MipResult r = solver.solve(formulation->model());
    benchmark::DoNotOptimize(r.objective);
    nodes = r.nodes;
    rows_removed = r.presolve_rows_removed;
    cols_removed = r.presolve_cols_removed;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["pre_rows"] = static_cast<double>(rows_removed);
  state.counters["pre_cols"] = static_cast<double>(cols_removed);
}
BENCHMARK(BM_CSigmaSolve)
    ->ArgNames({"requests", "presolve"})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

// The root-cut + reduced-cost-fixing ablation pair on the fig3 hard cell
// (cΣ, 2×3 grid, 4 requests, 3 h flexibility): Args {seed, 0} strips the
// cutting-plane loop and rc fixing, Args {seed, 1} is the default
// configuration. Counters expose nodes/cuts/rc-fixed so the node-count
// reduction the cuts buy is visible next to the wall-clock delta; the
// objectives of both variants must match (the cut-validity tests pin
// that invariant).
void BM_CSigmaSolveCuts(benchmark::State& state) {
  workload::WorkloadParams params;
  params.grid_rows = 2;
  params.grid_cols = 3;
  params.star_leaves = 2;
  params.num_requests = 4;
  params.seed = static_cast<unsigned>(state.range(0));
  params.flexibility = 3.0;
  const net::TvnepInstance instance = workload::generate_workload(params);
  const auto formulation =
      core::build_formulation(instance, core::ModelKind::kCSigma, {});

  mip::MipOptions options;
  const bool cuts = state.range(1) != 0;
  if (!cuts) options.cut_rounds = 0;
  options.rc_fixing = cuts;
  long nodes = 0, cuts_added = 0, rc_fixed = 0;
  double objective = 0.0;
  for (auto _ : state) {
    mip::MipSolver solver(options);
    const mip::MipResult r = solver.solve(formulation->model());
    benchmark::DoNotOptimize(r.objective);
    nodes = r.nodes;
    cuts_added = r.cuts_added;
    rc_fixed = r.rc_fixed;
    objective = r.objective;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["cuts"] = static_cast<double>(cuts_added);
  state.counters["rc_fixed"] = static_cast<double>(rc_fixed);
  state.counters["objective"] = objective;
}
BENCHMARK(BM_CSigmaSolveCuts)
    ->ArgNames({"seed", "cuts"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

// The numerical-resilience overhead pair (ISSUE acceptance: scaling +
// recovery ladder <= 5% on clean instances). Arg 0 strips the resilience
// layer (no equilibration, no recovery ladder), arg 1 is the default
// configuration; no faults are injected, so the delta is pure bookkeeping:
// the one-off scaling pass plus unit-factor conversions on extraction.
void BM_CSigmaSolveResilience(benchmark::State& state) {
  workload::WorkloadParams params;
  params.grid_rows = 2;
  params.grid_cols = 2;
  params.star_leaves = 2;
  params.num_requests = static_cast<int>(state.range(0));
  params.seed = 1;
  params.flexibility = 1.0;
  const net::TvnepInstance instance = workload::generate_workload(params);
  const auto formulation =
      core::build_formulation(instance, core::ModelKind::kCSigma, {});

  mip::MipOptions options;
  const bool resilience = state.range(1) != 0;
  options.lp.scaling = resilience;
  options.lp.recovery = resilience;
  long nodes = 0, recoveries = 0;
  for (auto _ : state) {
    mip::MipSolver solver(options);
    const mip::MipResult r = solver.solve(formulation->model());
    benchmark::DoNotOptimize(r.objective);
    nodes = r.nodes;
    recoveries = r.lp_recoveries;
  }
  state.counters["nodes"] = static_cast<double>(nodes);
  state.counters["recoveries"] = static_cast<double>(recoveries);
}
BENCHMARK(BM_CSigmaSolveResilience)
    ->ArgNames({"requests", "resilience"})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

// The reduction loop alone on the cΣ grid model (no tree search).
void BM_PresolveCSigma(benchmark::State& state) {
  workload::WorkloadParams params;
  params.grid_rows = 2;
  params.grid_cols = 3;
  params.star_leaves = 2;
  params.num_requests = static_cast<int>(state.range(0));
  params.seed = 1;
  params.flexibility = 2.0;
  const net::TvnepInstance instance = workload::generate_workload(params);
  const auto formulation =
      core::build_formulation(instance, core::ModelKind::kCSigma, {});
  presolve::PresolveStats stats;
  for (auto _ : state) {
    auto result = presolve::run(formulation->model());
    benchmark::DoNotOptimize(result.reduced.num_vars());
    stats = result.stats;
  }
  state.counters["rows_removed"] = static_cast<double>(stats.rows_removed);
  state.counters["cols_removed"] = static_cast<double>(stats.cols_removed);
  state.counters["coeffs"] = static_cast<double>(stats.coeffs_tightened);
}
BENCHMARK(BM_PresolveCSigma)->Arg(4)->Arg(8)->Arg(12);

// The observability overhead pair (ISSUE acceptance: <= 2% with tracing
// compiled in but inactive). Arg 0 = subsystems off (every instrumentation
// site is one relaxed atomic load + branch), arg 1 = tracer + metrics
// recording (events are discarded between iterations so the shards do not
// grow unboundedly).
void BM_CSigmaSolveObs(benchmark::State& state) {
  workload::WorkloadParams params;
  params.grid_rows = 2;
  params.grid_cols = 2;
  params.star_leaves = 2;
  params.num_requests = 2;
  params.seed = 1;
  params.flexibility = 1.0;
  const net::TvnepInstance instance = workload::generate_workload(params);
  const auto formulation =
      core::build_formulation(instance, core::ModelKind::kCSigma, {});

  const bool obs_on = state.range(0) != 0;
  if (obs_on) {
    obs::Tracer::instance().reset();
    obs::Tracer::instance().start();
    obs::Metrics::instance().reset();
    obs::Metrics::instance().start();
  }
  long nodes = 0;
  for (auto _ : state) {
    mip::MipSolver solver;
    const mip::MipResult r = solver.solve(formulation->model());
    benchmark::DoNotOptimize(r.objective);
    nodes = r.nodes;
    if (obs_on) {
      state.PauseTiming();
      obs::Tracer::instance().reset();
      state.ResumeTiming();
    }
  }
  if (obs_on) {
    obs::Tracer::instance().stop();
    obs::Tracer::instance().reset();
    obs::Metrics::instance().stop();
    obs::Metrics::instance().reset();
  }
  state.counters["nodes"] = static_cast<double>(nodes);
}
BENCHMARK(BM_CSigmaSolveObs)
    ->ArgNames({"obs"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// The raw cost of one instrumentation site: a span constructor/destructor
// plus a counter bump, with the subsystems inactive (arg 0, the cost every
// un-instrumented run pays) vs active (arg 1).
void BM_SpanEvent(benchmark::State& state) {
  const bool obs_on = state.range(0) != 0;
  if (obs_on) {
    obs::Tracer::instance().reset();
    obs::Tracer::instance().start();
    obs::Metrics::instance().reset();
    obs::Metrics::instance().start();
  }
  long spins = 0;
  for (auto _ : state) {
    obs::SpanScope span("bench.span", "bench");
    obs::counter_add("bench.events");
    benchmark::DoNotOptimize(++spins);
    if (obs_on && spins % 65536 == 0) {
      state.PauseTiming();
      obs::Tracer::instance().reset();
      state.ResumeTiming();
    }
  }
  if (obs_on) {
    obs::Tracer::instance().stop();
    obs::Tracer::instance().reset();
    obs::Metrics::instance().stop();
    obs::Metrics::instance().reset();
  }
}
BENCHMARK(BM_SpanEvent)->ArgNames({"obs"})->Arg(0)->Arg(1);

void BM_DependencyGraph(benchmark::State& state) {
  workload::WorkloadParams params;
  params.num_requests = static_cast<int>(state.range(0));
  params.seed = 1;
  params.flexibility = 1.0;
  const net::TvnepInstance instance = workload::generate_workload(params);
  for (auto _ : state) {
    core::DependencyGraph graph(instance);
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_DependencyGraph)->Arg(10)->Arg(20)->Arg(40);

void BM_BuildCSigmaModel(benchmark::State& state) {
  workload::WorkloadParams params;
  params.grid_rows = 2;
  params.grid_cols = 3;
  params.star_leaves = 2;
  params.num_requests = static_cast<int>(state.range(0));
  params.seed = 1;
  params.flexibility = 2.0;
  const net::TvnepInstance instance = workload::generate_workload(params);
  for (auto _ : state) {
    auto f = core::build_formulation(instance, core::ModelKind::kCSigma, {});
    benchmark::DoNotOptimize(f->model().num_constraints());
  }
}
BENCHMARK(BM_BuildCSigmaModel)->Arg(4)->Arg(8)->Arg(12);

void BM_GenerateWorkload(benchmark::State& state) {
  workload::WorkloadParams params;
  params.num_requests = static_cast<int>(state.range(0));
  params.seed = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::generate_workload(params));
  }
}
BENCHMARK(BM_GenerateWorkload)->Arg(20)->Arg(100);

}  // namespace
}  // namespace tvnep

BENCHMARK_MAIN();
