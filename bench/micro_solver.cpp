// Micro-benchmarks of the substrate: simplex solves, warm restarts, MIP
// knapsacks, dependency-graph construction and model building.
#include <benchmark/benchmark.h>

#include "lp/simplex.hpp"
#include "mip/branch_and_bound.hpp"
#include "support/rng.hpp"
#include "tvnep/dependency.hpp"
#include "tvnep/solver.hpp"
#include "workload/generator.hpp"

namespace tvnep {
namespace {

lp::Problem random_lp(int n, int m, std::uint64_t seed) {
  Rng rng(seed);
  lp::Problem p;
  for (int j = 0; j < n; ++j)
    p.add_column(0.0, static_cast<double>(rng.uniform_int(1, 5)),
                 static_cast<double>(rng.uniform_int(-5, 5)));
  for (int i = 0; i < m; ++i) {
    std::vector<std::pair<int, double>> coeffs;
    for (int j = 0; j < n; ++j)
      if (rng.uniform01() < 0.3)
        coeffs.emplace_back(j, static_cast<double>(rng.uniform_int(-3, 3)));
    p.add_row(-lp::kInfinity, static_cast<double>(rng.uniform_int(1, 10)),
              coeffs);
  }
  p.finalize();
  return p;
}

void BM_SimplexColdSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lp::Problem p = random_lp(n, n / 2, 42);
  for (auto _ : state) {
    lp::Simplex s(p);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SimplexColdSolve)->Arg(50)->Arg(100)->Arg(200);

void BM_SimplexWarmRestart(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lp::Problem p = random_lp(n, n / 2, 42);
  lp::Simplex s(p);
  s.solve();
  bool tighten = true;
  for (auto _ : state) {
    s.set_bounds(0, 0.0, tighten ? 0.0 : p.column(0).upper);
    tighten = !tighten;
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SimplexWarmRestart)->Arg(50)->Arg(100)->Arg(200);

void BM_MipKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  mip::Model m;
  mip::LinExpr weight, value;
  for (int i = 0; i < n; ++i) {
    const mip::Var x = m.add_binary();
    weight += static_cast<double>(rng.uniform_int(1, 20)) * x;
    value += static_cast<double>(rng.uniform_int(1, 30)) * x;
  }
  m.add_constr(weight <= 5.0 * n);
  m.set_objective(mip::Sense::kMaximize, value);
  for (auto _ : state) {
    mip::MipSolver solver;
    benchmark::DoNotOptimize(solver.solve(m));
  }
}
BENCHMARK(BM_MipKnapsack)->Arg(10)->Arg(20)->Arg(30);

void BM_DependencyGraph(benchmark::State& state) {
  workload::WorkloadParams params;
  params.num_requests = static_cast<int>(state.range(0));
  params.seed = 1;
  params.flexibility = 1.0;
  const net::TvnepInstance instance = workload::generate_workload(params);
  for (auto _ : state) {
    core::DependencyGraph graph(instance);
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_DependencyGraph)->Arg(10)->Arg(20)->Arg(40);

void BM_BuildCSigmaModel(benchmark::State& state) {
  workload::WorkloadParams params;
  params.grid_rows = 2;
  params.grid_cols = 3;
  params.star_leaves = 2;
  params.num_requests = static_cast<int>(state.range(0));
  params.seed = 1;
  params.flexibility = 2.0;
  const net::TvnepInstance instance = workload::generate_workload(params);
  for (auto _ : state) {
    auto f = core::build_formulation(instance, core::ModelKind::kCSigma, {});
    benchmark::DoNotOptimize(f->model().num_constraints());
  }
}
BENCHMARK(BM_BuildCSigmaModel)->Arg(4)->Arg(8)->Arg(12);

void BM_GenerateWorkload(benchmark::State& state) {
  workload::WorkloadParams params;
  params.num_requests = static_cast<int>(state.range(0));
  params.seed = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(workload::generate_workload(params));
  }
}
BENCHMARK(BM_GenerateWorkload)->Arg(20)->Arg(100);

}  // namespace
}  // namespace tvnep

BENCHMARK_MAIN();
