// Shared glue for the figure-reproduction benches: outcome → table rows,
// summary printing, CSV export.
#pragma once

#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "eval/runner.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace tvnep::bench {

/// Serializes progress lines written from parallel sweep cells. The sweep
/// runner already serializes its own announce callback; benches that log
/// from inside eval::for_each_cell bodies must lock this themselves.
inline std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

/// Announces the sweep fan-out once at the start of a bench run.
inline void announce_threads(const eval::SweepConfig& config) {
  std::cerr << "sweep: " << config.flexibilities.size() << " flexibilities × "
            << config.seeds << " seeds over "
            << eval::effective_threads(config) << " threads\n";
}

/// Prints per-flexibility five-number summaries of `values` (one vector of
/// per-seed values per flexibility level), the way the paper's boxplots
/// aggregate the 24 workloads.
inline void print_series(const std::string& title,
                         const std::vector<double>& flexibilities,
                         const std::vector<std::vector<double>>& values,
                         std::ostream& os, const std::string& csv_path) {
  Table table({"flex_h", "n", "min", "q1", "median", "q3", "max", "mean"});
  for (std::size_t f = 0; f < flexibilities.size(); ++f) {
    const Summary s = summarize(values[f]);
    table.add_row({Table::fmt(flexibilities[f], 1),
                   std::to_string(s.count), Table::fmt(s.min),
                   Table::fmt(s.q1), Table::fmt(s.median), Table::fmt(s.q3),
                   Table::fmt(s.max), Table::fmt(s.mean)});
  }
  os << "== " << title << " ==\n";
  table.print(os);
  os << '\n';
  if (!csv_path.empty()) table.save_csv(csv_path);
}

/// Gap values: timeouts without incumbent are the paper's "∞"; we cap them
/// at this marker value so summaries stay finite and recognizable.
inline double capped_gap(const core::TvnepSolveResult& result,
                         double infinity_marker = 10.0) {
  const double g = result.gap;
  if (!result.has_solution || g > infinity_marker) return infinity_marker;
  return g;
}

/// Restricts an instance to a subset of its requests (keeping substrate,
/// horizon and fixed mappings). The fixed-set objectives (earliness, load
/// balancing, link disabling) require every remaining request to be
/// embeddable; the benches use the greedy's accepted set for that, mirroring
/// how an operator would schedule an admitted batch.
inline net::TvnepInstance restrict_to(const net::TvnepInstance& instance,
                                      const std::vector<int>& keep) {
  net::TvnepInstance out(instance.substrate(), instance.horizon());
  for (const int r : keep) {
    if (instance.has_fixed_mapping(r))
      out.add_request(instance.request(r), instance.fixed_mapping(r));
    else
      out.add_request(instance.request(r));
  }
  return out;
}

inline void announce_progress(const eval::ScenarioOutcome& outcome) {
  std::cerr << "  flex=" << outcome.flexibility << " seed=" << outcome.seed
            << " status=" << mip::to_string(outcome.result.status)
            << " obj=" << outcome.result.objective
            << " t=" << outcome.result.seconds << "s"
            << " wall=" << outcome.wall_seconds << "s"
            << " nodes=" << outcome.result.nodes
            << " pivots=" << outcome.result.lp_pivots;
  if (outcome.failed) std::cerr << " FAILED(" << outcome.error << ")";
  std::cerr << '\n';
}

}  // namespace tvnep::bench
