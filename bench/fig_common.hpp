// Shared glue for the figure-reproduction benches: outcome → table rows,
// summary printing, CSV export.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eval/runner.hpp"
#include "obs/session.hpp"
#include "support/atomic_file.hpp"
#include "support/parse_error.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace tvnep::bench {

/// `--quiet`: suppress per-cell progress output (the sweep announce lines
/// and the bespoke per-cell logs of fig5/6/7). Summary tables and CSVs are
/// unaffected.
inline bool quiet(const eval::Args& args) {
  return args.get_bool("quiet", false);
}

/// Wires the observability flags shared by every bench binary:
///   --trace PATH        Chrome trace_event JSON (chrome://tracing, Perfetto)
///   --trace-jsonl PATH  the same events as a flat JSONL stream
///   --metrics PATH      counters/gauges/histograms JSON snapshot
///   --tree-log PATH     branch-and-bound node records, one JSON per line
/// The session lives in a function-local static, so the output files are
/// written once at process exit (or when a bench calls finish() itself —
/// the returned pointer allows that). Without any of the flags the
/// subsystems stay inactive and instrumentation costs one branch per site.
inline obs::ObsSession* init_observability(const eval::Args& args) {
  static std::unique_ptr<obs::ObsSession> session;
  if (session) return session.get();
  obs::ObsConfig config;
  config.trace_path = args.get_string("trace", "");
  config.trace_jsonl_path = args.get_string("trace-jsonl", "");
  config.metrics_path = args.get_string("metrics", "");
  config.tree_log_path = args.get_string("tree-log", "");
  config.live_flush_seconds = args.get_double("live-flush-ms", 0.0) / 1000.0;
  // A bench exposing /metrics (serve_load --metrics-port) needs the live
  // registry active even without a --metrics output file.
  config.metrics_live = args.has("metrics-port");
  if (!config.any()) return nullptr;
  session = std::make_unique<obs::ObsSession>(std::move(config));
  return session.get();
}

/// Quick-run defaults shared by every figure bench: unless the user passed
/// the flag (or asked for --paper-scale, when `respect_paper_scale`), the
/// sweep is shrunk so a default invocation finishes in minutes, not hours.
/// The ablation benches pass respect_paper_scale = false — their quick
/// defaults apply even under --paper-scale because the ablation axis, not
/// the workload scale, is the point. Also initializes the observability
/// session from `--trace`/`--trace-jsonl`/`--metrics`/`--tree-log`, since
/// every bench funnels through here before its sweeps start.
inline void apply_quick_defaults(const eval::Args& args,
                                 eval::SweepConfig& config, double time_limit,
                                 int seeds,
                                 const std::vector<double>& flexibilities,
                                 bool respect_paper_scale = true) {
  init_observability(args);
  const bool paper =
      respect_paper_scale && args.get_bool("paper-scale", false);
  if (!args.has("time-limit") && !paper) config.time_limit = time_limit;
  if (!args.has("seeds") && !paper) config.seeds = seeds;
  if (!args.has("flex-max") && !paper) config.flexibilities = flexibilities;
}

/// Wires the crash-safety flags shared by every sweep bench:
///   --checkpoint PATH  journal every completed cell to PATH (fresh file)
///   --resume PATH      load PATH, skip journaled cells, keep appending
/// Must run AFTER apply_quick_defaults/flag overrides so the journal
/// fingerprint covers the final sweep configuration — resuming under
/// different flags is refused with a structured error. `bench_id` keys the
/// fingerprint so a fig4 journal cannot be resumed into fig3.
inline void attach_resilience(const eval::Args& args,
                              eval::SweepConfig& config,
                              const std::string& bench_id) {
  const std::string resume = args.get_string("resume", "");
  const std::string checkpoint = args.get_string("checkpoint", "");
  if (resume.empty() && checkpoint.empty()) return;
  const std::uint64_t fingerprint =
      eval::sweep_fingerprint(config, bench_id);
  try {
    config.journal = resume.empty()
                         ? eval::SweepJournal::create(checkpoint, fingerprint)
                         : eval::SweepJournal::resume(resume, fingerprint);
  } catch (const ParseError& e) {
    // A refused resume (wrong fingerprint, corrupt journal) is an operator
    // error with a structured location — report it and stop cleanly.
    std::cerr << "error: " << e.what() << '\n';
    std::exit(2);
  }
  if (config.journal->loaded() > 0)
    std::cerr << "resume: " << config.journal->loaded()
              << " journaled cells will be reconstituted from "
              << config.journal->path() << '\n';
}

/// Serializes progress lines written from parallel sweep cells. The sweep
/// runner already serializes its own announce callback; benches that log
/// from inside eval::for_each_cell bodies must lock this themselves.
inline std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

/// Announces the sweep fan-out once at the start of a bench run.
inline void announce_threads(const eval::SweepConfig& config) {
  std::cerr << "sweep: " << config.flexibilities.size() << " flexibilities × "
            << config.seeds << " seeds over "
            << eval::effective_threads(config) << " threads\n";
}

/// Prints per-flexibility five-number summaries of `values` (one vector of
/// per-seed values per flexibility level), the way the paper's boxplots
/// aggregate the 24 workloads.
inline void print_series(const std::string& title,
                         const std::vector<double>& flexibilities,
                         const std::vector<std::vector<double>>& values,
                         std::ostream& os, const std::string& csv_path) {
  Table table({"flex_h", "n", "min", "q1", "median", "q3", "max", "mean"});
  for (std::size_t f = 0; f < flexibilities.size(); ++f) {
    const Summary s = summarize(values[f]);
    table.add_row({Table::fmt(flexibilities[f], 1),
                   std::to_string(s.count), Table::fmt(s.min),
                   Table::fmt(s.q1), Table::fmt(s.median), Table::fmt(s.q3),
                   Table::fmt(s.max), Table::fmt(s.mean)});
  }
  os << "== " << title << " ==\n";
  table.print(os);
  os << '\n';
  if (!csv_path.empty()) table.save_csv(csv_path);
}

/// Gap values: timeouts without incumbent are the paper's "∞"; we cap them
/// at this marker value so summaries stay finite and recognizable.
inline double capped_gap(const core::TvnepSolveResult& result,
                         double infinity_marker = 10.0) {
  const double g = result.gap;
  if (!result.has_solution || g > infinity_marker) return infinity_marker;
  return g;
}

/// Restricts an instance to a subset of its requests (keeping substrate,
/// horizon and fixed mappings). The fixed-set objectives (earliness, load
/// balancing, link disabling) require every remaining request to be
/// embeddable; the benches use the greedy's accepted set for that, mirroring
/// how an operator would schedule an admitted batch.
inline net::TvnepInstance restrict_to(const net::TvnepInstance& instance,
                                      const std::vector<int>& keep) {
  net::TvnepInstance out(instance.substrate(), instance.horizon());
  for (const int r : keep) {
    if (instance.has_fixed_mapping(r))
      out.add_request(instance.request(r), instance.fixed_mapping(r));
    else
      out.add_request(instance.request(r));
  }
  return out;
}

/// Renders a sweep progress prefix: "[completed/total eta 42s]"; the ETA
/// extrapolates from the mean wall clock of the cells solved this run
/// (resumed cells are excluded from the rate) and is omitted once the
/// sweep is done or while no cell has been solved yet. Resumed sweeps get
/// a "+k resumed" marker.
inline std::string progress_prefix(const eval::SweepProgress& progress) {
  std::string out = "[";
  out += std::to_string(progress.completed);
  out += "/";
  out += std::to_string(progress.total);
  if (progress.resumed > 0) {
    out += " +";
    out += std::to_string(progress.resumed);
    out += " resumed";
  }
  if (progress.completed < progress.total &&
      std::isfinite(progress.eta_seconds)) {
    char eta[32];
    std::snprintf(eta, sizeof(eta), " eta %.0fs", progress.eta_seconds);
    out += eta;
  }
  out += "]";
  return out;
}

inline void announce_progress(const eval::ScenarioOutcome& outcome,
                              const eval::SweepProgress& progress) {
  std::cerr << "  " << progress_prefix(progress)
            << " flex=" << outcome.flexibility << " seed=" << outcome.seed
            << " status=" << mip::to_string(outcome.result.status)
            << " obj=" << outcome.result.objective
            << " t=" << outcome.result.seconds << "s"
            << " wall=" << outcome.wall_seconds << "s"
            << " nodes=" << outcome.result.nodes
            << " pivots=" << outcome.result.lp_pivots
            << " pre=-" << outcome.result.presolve_rows_removed << "r/-"
            << outcome.result.presolve_cols_removed << "c";
  if (outcome.resumed) std::cerr << " RESUMED";
  if (outcome.retries > 0) std::cerr << " retries=" << outcome.retries;
  if (outcome.timed_out) std::cerr << " TIMED-OUT";
  if (outcome.abandoned) std::cerr << " ABANDONED";
  if (outcome.failed) std::cerr << " FAILED(" << outcome.error << ")";
  if (!outcome.failure_reason.empty())
    std::cerr << " DEGRADED(" << outcome.failure_reason << ")";
  std::cerr << '\n';
}

/// The per-cell announce callback a model sweep should use: the standard
/// progress line, or none at all under `--quiet`.
inline std::function<void(const eval::ScenarioOutcome&,
                          const eval::SweepProgress&)>
progress_announcer(const eval::Args& args) {
  if (quiet(args)) return nullptr;
  return announce_progress;
}

/// Writes one row per sweep cell with the full solver + presolve telemetry
/// plus the resilience trail (accepted/retries/timed_out/abandoned/
/// resumed) — the per-cell companion of print_series' per-flexibility
/// summaries. Appends when `append` so multi-model benches can collect
/// every model's cells in one file. The whole file is rewritten atomically
/// (temp file + rename) on every call from a process-local accumulator, so
/// a crash mid-export never leaves a half-written or stale-mixed CSV.
inline void save_outcomes_csv(const std::string& path,
                              const std::string& model_label,
                              const std::vector<eval::ScenarioOutcome>& outcomes,
                              bool append = false) {
  static std::mutex mutex;
  static std::map<std::string, std::string> accumulated;
  std::lock_guard<std::mutex> lock(mutex);
  std::string& body = accumulated[path];
  if (!append) body.clear();
  std::ostringstream os;
  for (const auto& o : outcomes) {
    const auto& r = o.result;
    os << model_label << ',' << o.flexibility << ',' << o.seed << ','
       << mip::to_string(r.status) << ',' << (o.failed ? 1 : 0) << ','
       << r.objective << ',' << r.best_bound << ',' << r.gap << ','
       << r.seconds << ',' << o.wall_seconds << ',' << r.nodes << ','
       << r.lp_pivots << ',' << r.lp_iterations << ',' << r.dual_fallbacks
       << ',' << r.refactorizations << ',' << r.numerical_drops << ','
       << r.lp_recoveries
       << ',' << r.basis_updates << ',' << r.lp_basis_fill_max
       << ',' << r.cuts_added << ',' << r.cut_rounds << ',' << r.rc_fixed
       << ',' << r.model_vars << ',' << r.model_constraints << ','
       << r.model_integer_vars << ',' << r.presolve_rows_removed << ','
       << r.presolve_cols_removed << ',' << r.presolve_coeffs_tightened << ','
       << r.presolve_bounds_tightened << ',' << (r.presolve_infeasible ? 1 : 0)
       << ',' << r.presolve_seconds << ',' << r.accepted_requests << ','
       << o.retries << ',' << (o.timed_out ? 1 : 0) << ','
       << (o.abandoned ? 1 : 0) << ',' << (o.resumed ? 1 : 0) << '\n';
  }
  body += os.str();
  AtomicFile file(path);
  file.stream()
      << "model,flex_h,seed,status,failed,objective,best_bound,gap,"
         "solve_seconds,wall_seconds,nodes,lp_pivots,lp_iterations,"
         "dual_fallbacks,refactorizations,numerical_drops,lp_recoveries,"
         "basis_updates,basis_fill,"
         "cuts_added,cut_rounds,rc_fixed,"
         "model_vars,model_constraints,model_integer_vars,"
         "presolve_rows_removed,presolve_cols_removed,"
         "presolve_coeffs_tightened,presolve_bounds_tightened,"
         "presolve_infeasible,presolve_seconds,accepted,retries,timed_out,"
         "abandoned,resumed\n"
      << body;
  if (!file.commit()) std::cerr << "warning: cannot write " << path << '\n';
}

}  // namespace tvnep::bench
