// Figure 6: objective gap of the cΣ-Model after the time limit under the
// three non-admission objectives of Section IV-E, on the greedy-admitted
// request sets (see fig5_runtime_objectives.cpp).
//
// Expected shape: mostly zero gaps; link disabling the hardest, with
// nonzero gaps appearing at higher flexibilities.
#include <iostream>

#include "fig_common.hpp"
#include "greedy/greedy.hpp"
#include "obs/metrics.hpp"

using namespace tvnep;

int main(int argc, char** argv) {
  const eval::Args args(argc, argv);
  eval::SweepConfig config = eval::sweep_from_args(args, /*requests=*/5,
                                                   /*rows=*/2, /*cols=*/3,
                                                   /*leaves=*/2);
  bench::apply_quick_defaults(args, config, /*time_limit=*/8.0, /*seeds=*/2,
                              {0.0, 1.0, 2.0, 3.0});
  bench::attach_resilience(args, config, "fig6");
  const bool quiet = bench::quiet(args);
  bench::announce_threads(config);

  const core::ObjectiveKind objectives[] = {
      core::ObjectiveKind::kMaxEarliness,
      core::ObjectiveKind::kBalanceNodeLoad,
      core::ObjectiveKind::kDisableLinks};

  for (const core::ObjectiveKind objective : objectives) {
    std::cerr << "objective " << core::to_string(objective) << "...\n";
    // One slot per cell, written only by that cell's worker, so the series
    // is identical for every --threads value.
    std::vector<std::vector<double>> gaps(
        config.flexibilities.size(),
        std::vector<double>(static_cast<std::size_t>(config.seeds), 0.0));
    eval::for_each_cell(config, [&](std::size_t f, int seed, std::size_t) {
      // Journal-backed resume (bespoke cells get checkpointing but not the
      // watchdog/retry ladder of the run_*_sweep harnesses).
      const eval::CellKey key{core::to_string(objective),
                              static_cast<int>(f), seed};
      if (config.journal) {
        if (const eval::CellRecord* rec = config.journal->find(key)) {
          gaps[f][static_cast<std::size_t>(seed)] = rec->number("gap");
          obs::counter_add("sweep.resumed_cells");
          return;
        }
      }
      workload::WorkloadParams params = config.base;
      params.seed = static_cast<std::uint64_t>(seed) + 1;
      const net::TvnepInstance full =
          workload::generate_workload_with_flexibility(
              params, config.flexibilities[f]);

      greedy::GreedyOptions greedy_options;
      greedy_options.per_iteration_time_limit = config.time_limit;
      greedy_options.mip.presolve = config.presolve;
      const greedy::GreedyResult admitted =
          greedy::solve_greedy(full, greedy_options);
      std::vector<int> keep;
      for (int r = 0; r < full.num_requests(); ++r)
        if (admitted.solution.requests[static_cast<std::size_t>(r)].accepted)
          keep.push_back(r);
      const net::TvnepInstance instance = bench::restrict_to(full, keep);

      core::SolveParams solve_params;
      solve_params.build = config.build;
      solve_params.build.objective = objective;
      solve_params.time_limit_seconds = config.time_limit;
      solve_params.mip.presolve = config.presolve;
      const core::TvnepSolveResult result =
          core::solve(instance, core::ModelKind::kCSigma, solve_params);
      gaps[f][static_cast<std::size_t>(seed)] = bench::capped_gap(result);
      if (config.journal) {
        eval::CellRecord rec;
        rec.key = key;
        rec.fields["kind"] = eval::JournalValue("fig6");
        rec.fields["gap"] = eval::JournalValue(bench::capped_gap(result));
        rec.fields["status"] =
            eval::JournalValue(mip::to_string(result.status));
        config.journal->append(rec);
      }

      if (!quiet) {
        std::lock_guard<std::mutex> lock(bench::log_mutex());
        std::cerr << "  flex=" << config.flexibilities[f] << " seed=" << seed
                  << " status=" << mip::to_string(result.status)
                  << " gap=" << result.gap << "\n";
      }
    });
    bench::print_series(
        std::string("Fig 6 — cΣ gap under ") + core::to_string(objective) +
            " (10 = no incumbent, paper's ∞)",
        config.flexibilities, gaps, std::cout,
        std::string("fig6_gap_") + core::to_string(objective) + ".csv");
  }
  return 0;
}
