// Figure 3: runtime of the Δ-, Σ- and cΣ-Model MIP formulations as a
// function of temporal flexibility (access-control objective). The paper
// caps runs at 3600 s; a run at the cap means "no optimal solution found".
//
// Expected shape: cΣ fastest by about an order of magnitude over Σ; Δ hits
// the cap (and usually finds no incumbent at all) already at moderate
// flexibility. Flags: see eval::sweep_from_args (--paper-scale for the
// full Section VI-A setup).
#include <iostream>

#include "fig_common.hpp"

using namespace tvnep;

int main(int argc, char** argv) {
  const eval::Args args(argc, argv);
  eval::SweepConfig config = eval::sweep_from_args(args, /*requests=*/4,
                                                   /*rows=*/2, /*cols=*/3,
                                                   /*leaves=*/2);
  bench::apply_quick_defaults(args, config, /*time_limit=*/8.0, /*seeds=*/2,
                              {0.0, 1.0, 2.0, 3.0});
  bench::attach_resilience(args, config, "fig3");
  bench::announce_threads(config);

  bool first_model = true;
  for (const core::ModelKind kind :
       {core::ModelKind::kDelta, core::ModelKind::kSigma,
        core::ModelKind::kCSigma}) {
    std::cerr << "model " << core::to_string(kind) << "...\n";
    const auto outcomes =
        eval::run_model_sweep(config, kind, bench::progress_announcer(args));
    bench::save_outcomes_csv("fig3_cells.csv", core::to_string(kind), outcomes,
                             /*append=*/!first_model);
    first_model = false;
    const auto runtimes = eval::series_by_flexibility(
        config, outcomes,
        [&](const eval::ScenarioOutcome& o) { return o.result.seconds; });
    bench::print_series(
        std::string("Fig 3 — runtime [s] of ") + core::to_string(kind) +
            " (cap " + Table::fmt(config.time_limit, 0) + "s = unsolved)",
        config.flexibilities, runtimes, std::cout,
        std::string("fig3_runtime_") + core::to_string(kind) + ".csv");
  }
  return 0;
}
