// Figure 4: objective gap (relative difference between the incumbent and
// the proven bound) of the Δ-, Σ- and cΣ-Models after the time limit.
// Runs that found no incumbent report the paper's "∞" marker (capped at
// 10 for finite summaries).
//
// Expected shape: Δ mostly at ∞ from moderate flexibility on; Σ and cΣ
// always find solutions, with cΣ's gaps about an order of magnitude
// smaller.
#include <iostream>

#include "fig_common.hpp"

using namespace tvnep;

int main(int argc, char** argv) {
  const eval::Args args(argc, argv);
  eval::SweepConfig config = eval::sweep_from_args(args, /*requests=*/4,
                                                   /*rows=*/2, /*cols=*/3,
                                                   /*leaves=*/2);
  bench::apply_quick_defaults(args, config, /*time_limit=*/8.0, /*seeds=*/2,
                              {0.0, 1.0, 2.0, 3.0});
  bench::attach_resilience(args, config, "fig4");
  bench::announce_threads(config);

  bool first_model = true;
  for (const core::ModelKind kind :
       {core::ModelKind::kDelta, core::ModelKind::kSigma,
        core::ModelKind::kCSigma}) {
    std::cerr << "model " << core::to_string(kind) << "...\n";
    const auto outcomes =
        eval::run_model_sweep(config, kind, bench::progress_announcer(args));
    bench::save_outcomes_csv("fig4_cells.csv", core::to_string(kind), outcomes,
                             /*append=*/!first_model);
    first_model = false;
    const auto gaps = eval::series_by_flexibility(
        config, outcomes, [&](const eval::ScenarioOutcome& o) {
          return bench::capped_gap(o.result);
        });
    bench::print_series(
        std::string("Fig 4 — objective gap of ") + core::to_string(kind) +
            " after the time limit (10 = no incumbent, paper's ∞)",
        config.flexibilities, gaps, std::cout,
        std::string("fig4_gap_") + core::to_string(kind) + ".csv");
  }
  return 0;
}
