// Figure 7: relative performance of the greedy cΣ_A^G with respect to the
// best solution found by the (exact) cΣ-Model under access control:
//     (objective(cΣ) - objective(cΣ_A^G)) / objective(cΣ)  [%]
//
// Expected shape: median around 5-10%, occasionally above 10%; greedy
// iteration runtimes a fraction of a second, far below the exact solves.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <limits>
#include <sstream>

#include "fig_common.hpp"
#include "greedy/greedy.hpp"
#include "obs/metrics.hpp"

using namespace tvnep;

int main(int argc, char** argv) {
  const eval::Args args(argc, argv);
  eval::SweepConfig config = eval::sweep_from_args(args, /*requests=*/5,
                                                   /*rows=*/2, /*cols=*/3,
                                                   /*leaves=*/2);
  bench::apply_quick_defaults(args, config, /*time_limit=*/10.0, /*seeds=*/3,
                              {0.0, 1.0, 2.0, 3.0});
  bench::attach_resilience(args, config, "fig7");
  const bool quiet = bench::quiet(args);
  bench::announce_threads(config);

  const std::size_t seeds = static_cast<std::size_t>(config.seeds);
  // Per-cell slots (NaN = cell skipped because the exact solve produced no
  // usable reference); compacted in deterministic grid order below.
  const double kSkipped = std::numeric_limits<double>::quiet_NaN();
  std::vector<std::vector<double>> cell_off_by(
      config.flexibilities.size(), std::vector<double>(seeds, kSkipped));
  std::vector<std::vector<double>> cell_iteration_times(
      config.flexibilities.size() * seeds);

  eval::for_each_cell(config, [&](std::size_t f, int seed, std::size_t cell) {
    // Journal-backed resume (bespoke cells get checkpointing but not the
    // watchdog/retry ladder of the run_*_sweep harnesses). The greedy
    // iteration-time trajectory rides along as one space-separated field.
    const eval::CellKey key{"fig7", static_cast<int>(f), seed};
    if (config.journal) {
      if (const eval::CellRecord* rec = config.journal->find(key)) {
        cell_off_by[f][static_cast<std::size_t>(seed)] =
            rec->number("off_by", kSkipped);
        std::istringstream times(rec->text("iteration_seconds"));
        double t = 0.0;
        while (times >> t) cell_iteration_times[cell].push_back(t);
        obs::counter_add("sweep.resumed_cells");
        return;
      }
    }
    workload::WorkloadParams params = config.base;
    params.seed = static_cast<std::uint64_t>(seed) + 1;
    const net::TvnepInstance instance =
        workload::generate_workload_with_flexibility(
            params, config.flexibilities[f]);

    greedy::GreedyOptions greedy_options;
    greedy_options.per_iteration_time_limit = config.time_limit;
    greedy_options.mip.presolve = config.presolve;
    const greedy::GreedyResult g = greedy::solve_greedy(instance, greedy_options);
    cell_iteration_times[cell] = g.iteration_seconds;

    core::SolveParams solve_params;
    solve_params.build = config.build;
    solve_params.time_limit_seconds = config.time_limit;
    solve_params.mip.presolve = config.presolve;
    const core::TvnepSolveResult exact =
        core::solve(instance, core::ModelKind::kCSigma, solve_params);

    double relative = kSkipped;
    double greedy_revenue = 0.0;
    if (exact.has_solution && exact.objective > 1e-9) {
      greedy_revenue = g.solution.revenue(instance);
      relative = 100.0 * std::max(0.0, exact.objective - greedy_revenue) /
                 exact.objective;
      cell_off_by[f][static_cast<std::size_t>(seed)] = relative;
    }
    if (config.journal) {
      eval::CellRecord rec;
      rec.key = key;
      rec.fields["kind"] = eval::JournalValue("fig7");
      rec.fields["off_by"] = eval::JournalValue(relative);
      std::ostringstream times;
      times.precision(17);
      for (std::size_t i = 0; i < g.iteration_seconds.size(); ++i) {
        if (i > 0) times << ' ';
        times << g.iteration_seconds[i];
      }
      rec.fields["iteration_seconds"] = eval::JournalValue(times.str());
      config.journal->append(rec);
    }
    if (std::isnan(relative)) return;

    if (!quiet) {
      std::lock_guard<std::mutex> lock(bench::log_mutex());
      std::cerr << "  flex=" << config.flexibilities[f] << " seed=" << seed
                << " exact=" << exact.objective << " greedy=" << greedy_revenue
                << " off=" << relative << "%\n";
    }
  });

  std::vector<std::vector<double>> off_by(config.flexibilities.size());
  for (std::size_t f = 0; f < config.flexibilities.size(); ++f)
    for (const double v : cell_off_by[f])
      if (!std::isnan(v)) off_by[f].push_back(v);
  std::vector<double> greedy_iteration_times;
  for (const auto& times : cell_iteration_times)
    greedy_iteration_times.insert(greedy_iteration_times.end(), times.begin(),
                                  times.end());

  bench::print_series(
      "Fig 7 — greedy cΣ_A^G objective shortfall vs exact cΣ [%]",
      config.flexibilities, off_by, std::cout, "fig7_greedy_quality.csv");

  const Summary iteration = summarize(greedy_iteration_times);
  std::cout << "greedy per-iteration runtime [s]: median "
            << Table::fmt(iteration.median) << ", max "
            << Table::fmt(iteration.max) << " over " << iteration.count
            << " iterations\n";
  return 0;
}
