// Figure 8: number of requests embedded by the cΣ-Model (access control)
// as a function of temporal flexibility.
//
// Expected shape: roughly linear growth with flexibility.
#include <iostream>

#include "fig_common.hpp"

using namespace tvnep;

int main(int argc, char** argv) {
  const eval::Args args(argc, argv);
  eval::SweepConfig config = eval::sweep_from_args(args, /*requests=*/5,
                                                   /*rows=*/2, /*cols=*/3,
                                                   /*leaves=*/2);
  bench::apply_quick_defaults(args, config, /*time_limit=*/10.0, /*seeds=*/3,
                              {0.0, 1.0, 2.0, 3.0});
  bench::attach_resilience(args, config, "fig8");
  bench::announce_threads(config);

  const auto outcomes = eval::run_model_sweep(config, core::ModelKind::kCSigma,
                                              bench::progress_announcer(args));
  bench::save_outcomes_csv("fig8_cells.csv",
                           core::to_string(core::ModelKind::kCSigma), outcomes);
  // accepted_requests is the flat mirror of solution.num_accepted(), so
  // journal-resumed cells (which carry no solution object) plot the same.
  const auto accepted = eval::series_by_flexibility(
      config, outcomes, [](const eval::ScenarioOutcome& o) {
        return o.result.has_solution
                   ? static_cast<double>(o.result.accepted_requests)
                   : 0.0;
      });
  bench::print_series("Fig 8 — number of requests embedded by cΣ",
                      config.flexibilities, accepted, std::cout,
                      "fig8_embedded_requests.csv");
  return 0;
}
