file(REMOVE_RECURSE
  "CMakeFiles/support_parallel_test.dir/support_parallel_test.cpp.o"
  "CMakeFiles/support_parallel_test.dir/support_parallel_test.cpp.o.d"
  "support_parallel_test"
  "support_parallel_test.pdb"
  "support_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
