
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tvnep_event_formulation_test.cpp" "tests/CMakeFiles/tvnep_event_formulation_test.dir/tvnep_event_formulation_test.cpp.o" "gcc" "tests/CMakeFiles/tvnep_event_formulation_test.dir/tvnep_event_formulation_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tvnep/CMakeFiles/tvnep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tvnep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mip/CMakeFiles/tvnep_mip.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/tvnep_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tvnep_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tvnep_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
