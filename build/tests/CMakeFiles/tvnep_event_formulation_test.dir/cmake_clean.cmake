file(REMOVE_RECURSE
  "CMakeFiles/tvnep_event_formulation_test.dir/tvnep_event_formulation_test.cpp.o"
  "CMakeFiles/tvnep_event_formulation_test.dir/tvnep_event_formulation_test.cpp.o.d"
  "tvnep_event_formulation_test"
  "tvnep_event_formulation_test.pdb"
  "tvnep_event_formulation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_event_formulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
