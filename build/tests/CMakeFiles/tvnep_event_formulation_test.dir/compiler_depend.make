# Empty compiler generated dependencies file for tvnep_event_formulation_test.
# This may be replaced when dependencies are built.
