file(REMOVE_RECURSE
  "CMakeFiles/tvnep_random_test.dir/tvnep_random_test.cpp.o"
  "CMakeFiles/tvnep_random_test.dir/tvnep_random_test.cpp.o.d"
  "tvnep_random_test"
  "tvnep_random_test.pdb"
  "tvnep_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
