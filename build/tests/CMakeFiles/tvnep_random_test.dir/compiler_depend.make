# Empty compiler generated dependencies file for tvnep_random_test.
# This may be replaced when dependencies are built.
