# Empty dependencies file for lp_simplex_random_test.
# This may be replaced when dependencies are built.
