file(REMOVE_RECURSE
  "CMakeFiles/lp_simplex_random_test.dir/lp_simplex_random_test.cpp.o"
  "CMakeFiles/lp_simplex_random_test.dir/lp_simplex_random_test.cpp.o.d"
  "lp_simplex_random_test"
  "lp_simplex_random_test.pdb"
  "lp_simplex_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_simplex_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
