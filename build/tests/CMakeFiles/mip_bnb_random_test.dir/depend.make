# Empty dependencies file for mip_bnb_random_test.
# This may be replaced when dependencies are built.
