file(REMOVE_RECURSE
  "CMakeFiles/eval_args_test.dir/eval_args_test.cpp.o"
  "CMakeFiles/eval_args_test.dir/eval_args_test.cpp.o.d"
  "eval_args_test"
  "eval_args_test.pdb"
  "eval_args_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_args_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
