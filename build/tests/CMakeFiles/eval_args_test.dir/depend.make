# Empty dependencies file for eval_args_test.
# This may be replaced when dependencies are built.
