file(REMOVE_RECURSE
  "CMakeFiles/mip_expr_test.dir/mip_expr_test.cpp.o"
  "CMakeFiles/mip_expr_test.dir/mip_expr_test.cpp.o.d"
  "mip_expr_test"
  "mip_expr_test.pdb"
  "mip_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
