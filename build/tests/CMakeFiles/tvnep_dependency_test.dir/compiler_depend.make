# Empty compiler generated dependencies file for tvnep_dependency_test.
# This may be replaced when dependencies are built.
