file(REMOVE_RECURSE
  "CMakeFiles/tvnep_dependency_test.dir/tvnep_dependency_test.cpp.o"
  "CMakeFiles/tvnep_dependency_test.dir/tvnep_dependency_test.cpp.o.d"
  "tvnep_dependency_test"
  "tvnep_dependency_test.pdb"
  "tvnep_dependency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_dependency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
