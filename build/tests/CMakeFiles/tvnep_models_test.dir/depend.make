# Empty dependencies file for tvnep_models_test.
# This may be replaced when dependencies are built.
