file(REMOVE_RECURSE
  "CMakeFiles/tvnep_models_test.dir/tvnep_models_test.cpp.o"
  "CMakeFiles/tvnep_models_test.dir/tvnep_models_test.cpp.o.d"
  "tvnep_models_test"
  "tvnep_models_test.pdb"
  "tvnep_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
