# Empty compiler generated dependencies file for tvnep_placement_test.
# This may be replaced when dependencies are built.
