file(REMOVE_RECURSE
  "CMakeFiles/tvnep_placement_test.dir/tvnep_placement_test.cpp.o"
  "CMakeFiles/tvnep_placement_test.dir/tvnep_placement_test.cpp.o.d"
  "tvnep_placement_test"
  "tvnep_placement_test.pdb"
  "tvnep_placement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
