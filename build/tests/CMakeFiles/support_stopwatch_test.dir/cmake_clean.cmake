file(REMOVE_RECURSE
  "CMakeFiles/support_stopwatch_test.dir/support_stopwatch_test.cpp.o"
  "CMakeFiles/support_stopwatch_test.dir/support_stopwatch_test.cpp.o.d"
  "support_stopwatch_test"
  "support_stopwatch_test.pdb"
  "support_stopwatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_stopwatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
