# Empty compiler generated dependencies file for support_stopwatch_test.
# This may be replaced when dependencies are built.
