file(REMOVE_RECURSE
  "CMakeFiles/tvnep_solution_test.dir/tvnep_solution_test.cpp.o"
  "CMakeFiles/tvnep_solution_test.dir/tvnep_solution_test.cpp.o.d"
  "tvnep_solution_test"
  "tvnep_solution_test.pdb"
  "tvnep_solution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_solution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
