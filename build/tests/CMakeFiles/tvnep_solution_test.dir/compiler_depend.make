# Empty compiler generated dependencies file for tvnep_solution_test.
# This may be replaced when dependencies are built.
