file(REMOVE_RECURSE
  "CMakeFiles/mip_model_test.dir/mip_model_test.cpp.o"
  "CMakeFiles/mip_model_test.dir/mip_model_test.cpp.o.d"
  "mip_model_test"
  "mip_model_test.pdb"
  "mip_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
