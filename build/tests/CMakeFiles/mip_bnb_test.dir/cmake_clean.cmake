file(REMOVE_RECURSE
  "CMakeFiles/mip_bnb_test.dir/mip_bnb_test.cpp.o"
  "CMakeFiles/mip_bnb_test.dir/mip_bnb_test.cpp.o.d"
  "mip_bnb_test"
  "mip_bnb_test.pdb"
  "mip_bnb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mip_bnb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
