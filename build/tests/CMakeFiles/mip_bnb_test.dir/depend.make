# Empty dependencies file for mip_bnb_test.
# This may be replaced when dependencies are built.
