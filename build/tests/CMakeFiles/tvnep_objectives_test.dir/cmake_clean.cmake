file(REMOVE_RECURSE
  "CMakeFiles/tvnep_objectives_test.dir/tvnep_objectives_test.cpp.o"
  "CMakeFiles/tvnep_objectives_test.dir/tvnep_objectives_test.cpp.o.d"
  "tvnep_objectives_test"
  "tvnep_objectives_test.pdb"
  "tvnep_objectives_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_objectives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
