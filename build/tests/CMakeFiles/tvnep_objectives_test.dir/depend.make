# Empty dependencies file for tvnep_objectives_test.
# This may be replaced when dependencies are built.
