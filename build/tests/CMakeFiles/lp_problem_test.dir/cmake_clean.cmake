file(REMOVE_RECURSE
  "CMakeFiles/lp_problem_test.dir/lp_problem_test.cpp.o"
  "CMakeFiles/lp_problem_test.dir/lp_problem_test.cpp.o.d"
  "lp_problem_test"
  "lp_problem_test.pdb"
  "lp_problem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_problem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
