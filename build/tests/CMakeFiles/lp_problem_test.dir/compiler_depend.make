# Empty compiler generated dependencies file for lp_problem_test.
# This may be replaced when dependencies are built.
