# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_rng_test[1]_include.cmake")
include("/root/repo/build/tests/support_stats_test[1]_include.cmake")
include("/root/repo/build/tests/support_table_test[1]_include.cmake")
include("/root/repo/build/tests/support_parallel_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_dense_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_lu_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_sparse_test[1]_include.cmake")
include("/root/repo/build/tests/lp_problem_test[1]_include.cmake")
include("/root/repo/build/tests/lp_simplex_test[1]_include.cmake")
include("/root/repo/build/tests/lp_simplex_random_test[1]_include.cmake")
include("/root/repo/build/tests/mip_expr_test[1]_include.cmake")
include("/root/repo/build/tests/mip_model_test[1]_include.cmake")
include("/root/repo/build/tests/mip_bnb_test[1]_include.cmake")
include("/root/repo/build/tests/mip_bnb_random_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/tvnep_dependency_test[1]_include.cmake")
include("/root/repo/build/tests/tvnep_solution_test[1]_include.cmake")
include("/root/repo/build/tests/tvnep_models_test[1]_include.cmake")
include("/root/repo/build/tests/tvnep_objectives_test[1]_include.cmake")
include("/root/repo/build/tests/greedy_test[1]_include.cmake")
include("/root/repo/build/tests/eval_args_test[1]_include.cmake")
include("/root/repo/build/tests/tvnep_random_test[1]_include.cmake")
include("/root/repo/build/tests/support_stopwatch_test[1]_include.cmake")
include("/root/repo/build/tests/tvnep_event_formulation_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/tvnep_placement_test[1]_include.cmake")
