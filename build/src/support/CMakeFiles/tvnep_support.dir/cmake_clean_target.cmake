file(REMOVE_RECURSE
  "libtvnep_support.a"
)
