file(REMOVE_RECURSE
  "CMakeFiles/tvnep_support.dir/check.cpp.o"
  "CMakeFiles/tvnep_support.dir/check.cpp.o.d"
  "CMakeFiles/tvnep_support.dir/parallel.cpp.o"
  "CMakeFiles/tvnep_support.dir/parallel.cpp.o.d"
  "CMakeFiles/tvnep_support.dir/rng.cpp.o"
  "CMakeFiles/tvnep_support.dir/rng.cpp.o.d"
  "CMakeFiles/tvnep_support.dir/stats.cpp.o"
  "CMakeFiles/tvnep_support.dir/stats.cpp.o.d"
  "CMakeFiles/tvnep_support.dir/table.cpp.o"
  "CMakeFiles/tvnep_support.dir/table.cpp.o.d"
  "libtvnep_support.a"
  "libtvnep_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
