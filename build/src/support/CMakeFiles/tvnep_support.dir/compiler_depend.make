# Empty compiler generated dependencies file for tvnep_support.
# This may be replaced when dependencies are built.
