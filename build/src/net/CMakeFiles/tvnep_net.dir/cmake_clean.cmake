file(REMOVE_RECURSE
  "CMakeFiles/tvnep_net.dir/instance.cpp.o"
  "CMakeFiles/tvnep_net.dir/instance.cpp.o.d"
  "CMakeFiles/tvnep_net.dir/request.cpp.o"
  "CMakeFiles/tvnep_net.dir/request.cpp.o.d"
  "CMakeFiles/tvnep_net.dir/substrate.cpp.o"
  "CMakeFiles/tvnep_net.dir/substrate.cpp.o.d"
  "CMakeFiles/tvnep_net.dir/topology.cpp.o"
  "CMakeFiles/tvnep_net.dir/topology.cpp.o.d"
  "libtvnep_net.a"
  "libtvnep_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
