file(REMOVE_RECURSE
  "libtvnep_net.a"
)
