# Empty compiler generated dependencies file for tvnep_net.
# This may be replaced when dependencies are built.
