file(REMOVE_RECURSE
  "libtvnep_workload.a"
)
