file(REMOVE_RECURSE
  "CMakeFiles/tvnep_workload.dir/generator.cpp.o"
  "CMakeFiles/tvnep_workload.dir/generator.cpp.o.d"
  "libtvnep_workload.a"
  "libtvnep_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
