# Empty compiler generated dependencies file for tvnep_workload.
# This may be replaced when dependencies are built.
