file(REMOVE_RECURSE
  "libtvnep_core.a"
)
