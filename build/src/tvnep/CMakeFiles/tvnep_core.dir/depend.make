# Empty dependencies file for tvnep_core.
# This may be replaced when dependencies are built.
