
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tvnep/csigma_model.cpp" "src/tvnep/CMakeFiles/tvnep_core.dir/csigma_model.cpp.o" "gcc" "src/tvnep/CMakeFiles/tvnep_core.dir/csigma_model.cpp.o.d"
  "/root/repo/src/tvnep/delta_model.cpp" "src/tvnep/CMakeFiles/tvnep_core.dir/delta_model.cpp.o" "gcc" "src/tvnep/CMakeFiles/tvnep_core.dir/delta_model.cpp.o.d"
  "/root/repo/src/tvnep/dependency.cpp" "src/tvnep/CMakeFiles/tvnep_core.dir/dependency.cpp.o" "gcc" "src/tvnep/CMakeFiles/tvnep_core.dir/dependency.cpp.o.d"
  "/root/repo/src/tvnep/event_formulation.cpp" "src/tvnep/CMakeFiles/tvnep_core.dir/event_formulation.cpp.o" "gcc" "src/tvnep/CMakeFiles/tvnep_core.dir/event_formulation.cpp.o.d"
  "/root/repo/src/tvnep/formulation.cpp" "src/tvnep/CMakeFiles/tvnep_core.dir/formulation.cpp.o" "gcc" "src/tvnep/CMakeFiles/tvnep_core.dir/formulation.cpp.o.d"
  "/root/repo/src/tvnep/placement.cpp" "src/tvnep/CMakeFiles/tvnep_core.dir/placement.cpp.o" "gcc" "src/tvnep/CMakeFiles/tvnep_core.dir/placement.cpp.o.d"
  "/root/repo/src/tvnep/sigma_model.cpp" "src/tvnep/CMakeFiles/tvnep_core.dir/sigma_model.cpp.o" "gcc" "src/tvnep/CMakeFiles/tvnep_core.dir/sigma_model.cpp.o.d"
  "/root/repo/src/tvnep/solution.cpp" "src/tvnep/CMakeFiles/tvnep_core.dir/solution.cpp.o" "gcc" "src/tvnep/CMakeFiles/tvnep_core.dir/solution.cpp.o.d"
  "/root/repo/src/tvnep/solver.cpp" "src/tvnep/CMakeFiles/tvnep_core.dir/solver.cpp.o" "gcc" "src/tvnep/CMakeFiles/tvnep_core.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tvnep_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mip/CMakeFiles/tvnep_mip.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tvnep_support.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/tvnep_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tvnep_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
