file(REMOVE_RECURSE
  "CMakeFiles/tvnep_core.dir/csigma_model.cpp.o"
  "CMakeFiles/tvnep_core.dir/csigma_model.cpp.o.d"
  "CMakeFiles/tvnep_core.dir/delta_model.cpp.o"
  "CMakeFiles/tvnep_core.dir/delta_model.cpp.o.d"
  "CMakeFiles/tvnep_core.dir/dependency.cpp.o"
  "CMakeFiles/tvnep_core.dir/dependency.cpp.o.d"
  "CMakeFiles/tvnep_core.dir/event_formulation.cpp.o"
  "CMakeFiles/tvnep_core.dir/event_formulation.cpp.o.d"
  "CMakeFiles/tvnep_core.dir/formulation.cpp.o"
  "CMakeFiles/tvnep_core.dir/formulation.cpp.o.d"
  "CMakeFiles/tvnep_core.dir/placement.cpp.o"
  "CMakeFiles/tvnep_core.dir/placement.cpp.o.d"
  "CMakeFiles/tvnep_core.dir/sigma_model.cpp.o"
  "CMakeFiles/tvnep_core.dir/sigma_model.cpp.o.d"
  "CMakeFiles/tvnep_core.dir/solution.cpp.o"
  "CMakeFiles/tvnep_core.dir/solution.cpp.o.d"
  "CMakeFiles/tvnep_core.dir/solver.cpp.o"
  "CMakeFiles/tvnep_core.dir/solver.cpp.o.d"
  "libtvnep_core.a"
  "libtvnep_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
