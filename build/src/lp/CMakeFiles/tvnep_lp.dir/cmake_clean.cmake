file(REMOVE_RECURSE
  "CMakeFiles/tvnep_lp.dir/problem.cpp.o"
  "CMakeFiles/tvnep_lp.dir/problem.cpp.o.d"
  "CMakeFiles/tvnep_lp.dir/simplex.cpp.o"
  "CMakeFiles/tvnep_lp.dir/simplex.cpp.o.d"
  "libtvnep_lp.a"
  "libtvnep_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
