file(REMOVE_RECURSE
  "libtvnep_lp.a"
)
