# Empty compiler generated dependencies file for tvnep_lp.
# This may be replaced when dependencies are built.
