# Empty dependencies file for tvnep_lp.
# This may be replaced when dependencies are built.
