file(REMOVE_RECURSE
  "CMakeFiles/tvnep_greedy.dir/greedy.cpp.o"
  "CMakeFiles/tvnep_greedy.dir/greedy.cpp.o.d"
  "libtvnep_greedy.a"
  "libtvnep_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
