# Empty dependencies file for tvnep_greedy.
# This may be replaced when dependencies are built.
