file(REMOVE_RECURSE
  "libtvnep_greedy.a"
)
