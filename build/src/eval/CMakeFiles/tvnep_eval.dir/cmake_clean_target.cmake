file(REMOVE_RECURSE
  "libtvnep_eval.a"
)
