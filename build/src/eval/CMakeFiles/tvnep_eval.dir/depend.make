# Empty dependencies file for tvnep_eval.
# This may be replaced when dependencies are built.
