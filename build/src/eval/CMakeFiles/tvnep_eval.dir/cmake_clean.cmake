file(REMOVE_RECURSE
  "CMakeFiles/tvnep_eval.dir/args.cpp.o"
  "CMakeFiles/tvnep_eval.dir/args.cpp.o.d"
  "CMakeFiles/tvnep_eval.dir/runner.cpp.o"
  "CMakeFiles/tvnep_eval.dir/runner.cpp.o.d"
  "libtvnep_eval.a"
  "libtvnep_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
