# Empty compiler generated dependencies file for tvnep_eval.
# This may be replaced when dependencies are built.
