# Empty compiler generated dependencies file for tvnep_io.
# This may be replaced when dependencies are built.
