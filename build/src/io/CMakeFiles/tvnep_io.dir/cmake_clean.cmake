file(REMOVE_RECURSE
  "CMakeFiles/tvnep_io.dir/instance_io.cpp.o"
  "CMakeFiles/tvnep_io.dir/instance_io.cpp.o.d"
  "CMakeFiles/tvnep_io.dir/mps_writer.cpp.o"
  "CMakeFiles/tvnep_io.dir/mps_writer.cpp.o.d"
  "libtvnep_io.a"
  "libtvnep_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
