file(REMOVE_RECURSE
  "libtvnep_io.a"
)
