# Empty compiler generated dependencies file for tvnep_mip.
# This may be replaced when dependencies are built.
