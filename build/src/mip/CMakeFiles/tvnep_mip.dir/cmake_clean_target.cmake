file(REMOVE_RECURSE
  "libtvnep_mip.a"
)
