file(REMOVE_RECURSE
  "CMakeFiles/tvnep_mip.dir/branch_and_bound.cpp.o"
  "CMakeFiles/tvnep_mip.dir/branch_and_bound.cpp.o.d"
  "CMakeFiles/tvnep_mip.dir/expr.cpp.o"
  "CMakeFiles/tvnep_mip.dir/expr.cpp.o.d"
  "CMakeFiles/tvnep_mip.dir/model.cpp.o"
  "CMakeFiles/tvnep_mip.dir/model.cpp.o.d"
  "libtvnep_mip.a"
  "libtvnep_mip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_mip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
