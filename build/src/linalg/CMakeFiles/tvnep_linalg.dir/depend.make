# Empty dependencies file for tvnep_linalg.
# This may be replaced when dependencies are built.
