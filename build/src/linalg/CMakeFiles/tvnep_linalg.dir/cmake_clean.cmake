file(REMOVE_RECURSE
  "CMakeFiles/tvnep_linalg.dir/dense.cpp.o"
  "CMakeFiles/tvnep_linalg.dir/dense.cpp.o.d"
  "CMakeFiles/tvnep_linalg.dir/lu.cpp.o"
  "CMakeFiles/tvnep_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/tvnep_linalg.dir/sparse.cpp.o"
  "CMakeFiles/tvnep_linalg.dir/sparse.cpp.o.d"
  "libtvnep_linalg.a"
  "libtvnep_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tvnep_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
