file(REMOVE_RECURSE
  "libtvnep_linalg.a"
)
