# Empty dependencies file for fig7_greedy_quality.
# This may be replaced when dependencies are built.
