file(REMOVE_RECURSE
  "CMakeFiles/fig7_greedy_quality.dir/fig7_greedy_quality.cpp.o"
  "CMakeFiles/fig7_greedy_quality.dir/fig7_greedy_quality.cpp.o.d"
  "fig7_greedy_quality"
  "fig7_greedy_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_greedy_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
