# Empty dependencies file for fig5_runtime_objectives.
# This may be replaced when dependencies are built.
