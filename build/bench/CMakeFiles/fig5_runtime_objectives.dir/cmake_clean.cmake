file(REMOVE_RECURSE
  "CMakeFiles/fig5_runtime_objectives.dir/fig5_runtime_objectives.cpp.o"
  "CMakeFiles/fig5_runtime_objectives.dir/fig5_runtime_objectives.cpp.o.d"
  "fig5_runtime_objectives"
  "fig5_runtime_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_runtime_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
