# Empty compiler generated dependencies file for fig9_flexibility_improvement.
# This may be replaced when dependencies are built.
