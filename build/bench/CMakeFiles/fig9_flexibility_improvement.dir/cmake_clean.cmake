file(REMOVE_RECURSE
  "CMakeFiles/fig9_flexibility_improvement.dir/fig9_flexibility_improvement.cpp.o"
  "CMakeFiles/fig9_flexibility_improvement.dir/fig9_flexibility_improvement.cpp.o.d"
  "fig9_flexibility_improvement"
  "fig9_flexibility_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_flexibility_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
