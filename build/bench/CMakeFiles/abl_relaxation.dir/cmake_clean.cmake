file(REMOVE_RECURSE
  "CMakeFiles/abl_relaxation.dir/abl_relaxation.cpp.o"
  "CMakeFiles/abl_relaxation.dir/abl_relaxation.cpp.o.d"
  "abl_relaxation"
  "abl_relaxation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_relaxation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
