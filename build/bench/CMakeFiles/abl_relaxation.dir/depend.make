# Empty dependencies file for abl_relaxation.
# This may be replaced when dependencies are built.
