# Empty dependencies file for fig3_runtime_models.
# This may be replaced when dependencies are built.
