file(REMOVE_RECURSE
  "CMakeFiles/fig3_runtime_models.dir/fig3_runtime_models.cpp.o"
  "CMakeFiles/fig3_runtime_models.dir/fig3_runtime_models.cpp.o.d"
  "fig3_runtime_models"
  "fig3_runtime_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_runtime_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
