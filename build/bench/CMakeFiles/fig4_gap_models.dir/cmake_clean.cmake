file(REMOVE_RECURSE
  "CMakeFiles/fig4_gap_models.dir/fig4_gap_models.cpp.o"
  "CMakeFiles/fig4_gap_models.dir/fig4_gap_models.cpp.o.d"
  "fig4_gap_models"
  "fig4_gap_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_gap_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
