# Empty dependencies file for fig4_gap_models.
# This may be replaced when dependencies are built.
