file(REMOVE_RECURSE
  "CMakeFiles/abl_depcuts.dir/abl_depcuts.cpp.o"
  "CMakeFiles/abl_depcuts.dir/abl_depcuts.cpp.o.d"
  "abl_depcuts"
  "abl_depcuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_depcuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
