# Empty dependencies file for abl_depcuts.
# This may be replaced when dependencies are built.
