
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_embedded_requests.cpp" "bench/CMakeFiles/fig8_embedded_requests.dir/fig8_embedded_requests.cpp.o" "gcc" "bench/CMakeFiles/fig8_embedded_requests.dir/fig8_embedded_requests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/tvnep_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tvnep/CMakeFiles/tvnep_core.dir/DependInfo.cmake"
  "/root/repo/build/src/greedy/CMakeFiles/tvnep_greedy.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/tvnep_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/tvnep_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mip/CMakeFiles/tvnep_mip.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/tvnep_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tvnep_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tvnep_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
