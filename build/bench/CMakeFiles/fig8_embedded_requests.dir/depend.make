# Empty dependencies file for fig8_embedded_requests.
# This may be replaced when dependencies are built.
