file(REMOVE_RECURSE
  "CMakeFiles/fig8_embedded_requests.dir/fig8_embedded_requests.cpp.o"
  "CMakeFiles/fig8_embedded_requests.dir/fig8_embedded_requests.cpp.o.d"
  "fig8_embedded_requests"
  "fig8_embedded_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_embedded_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
