file(REMOVE_RECURSE
  "CMakeFiles/fig6_gap_objectives.dir/fig6_gap_objectives.cpp.o"
  "CMakeFiles/fig6_gap_objectives.dir/fig6_gap_objectives.cpp.o.d"
  "fig6_gap_objectives"
  "fig6_gap_objectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_gap_objectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
