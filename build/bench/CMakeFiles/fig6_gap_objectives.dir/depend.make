# Empty dependencies file for fig6_gap_objectives.
# This may be replaced when dependencies are built.
